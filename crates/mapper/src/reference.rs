//! The legacy hash-map PathFinder router, kept verbatim as the reference
//! implementation.
//!
//! [`Router`](crate::Router) runs the same negotiation scheme on flat
//! arrays indexed by dense [`himap_cgra::RIdx`] ids. This module preserves
//! the original `HashMap<(RNode, u32), _>` search exactly as it was, for
//! two jobs:
//!
//! * **Differential testing** — proptests route random queries through both
//!   routers and require bit-identical paths, costs and elapsed counts
//!   (see `crates/mapper/tests/router_diff.rs`).
//! * **Benchmarking** — the criterion `route_timed` group and the
//!   `bench_summary` bin measure the indexed router against this one, which
//!   is the evidence behind the CSR refactor's speedup claim.
//!
//! Nothing in the pipeline calls this router; do not "optimize" it — its
//! value is being the unchanged executable specification.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

use himap_cgra::{Mrrg, RKind, RNode};

use crate::router::{Elapsed, RoutedPath, RouterConfig, SignalId};

#[derive(PartialEq)]
struct HeapEntry {
    cost: f64,
    node: RNode,
    elapsed: u32,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // `total_cmp` orders NaN after every real cost, so a poisoned cost
        // sinks to the bottom of the max-heap instead of aborting the route.
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| (other.node, other.elapsed).cmp(&(self.node, self.elapsed)))
    }
}

/// The original PathFinder router over the implicit MRRG, state keyed on
/// `RNode` hash maps. See the module docs for why it is kept.
#[derive(Clone, Debug)]
pub struct ReferenceRouter {
    mrrg: Mrrg,
    /// Distinct signals currently claiming each resource.
    present: HashMap<RNode, Vec<SignalId>>,
    /// Accumulated history cost per resource.
    history: HashMap<RNode, f64>,
    config: RouterConfig,
}

impl ReferenceRouter {
    /// Creates a router over an MRRG.
    pub fn new(mrrg: Mrrg, config: RouterConfig) -> Self {
        ReferenceRouter { mrrg, present: HashMap::new(), history: HashMap::new(), config }
    }

    /// The routing-resource graph.
    pub fn mrrg(&self) -> &Mrrg {
        &self.mrrg
    }

    /// The configuration.
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// Cost of `signal` entering `node` under the current congestion state.
    pub fn node_cost(&self, node: RNode, signal: SignalId) -> f64 {
        let occupants = self.present.get(&node);
        if occupants.is_some_and(|o| o.contains(&signal)) {
            return self.config.same_signal_cost;
        }
        let distinct = occupants.map_or(0, |o| o.len());
        let capacity = self.mrrg.spec().capacity(node.kind);
        let over = (distinct + 1).saturating_sub(capacity);
        self.config.base_cost
            + self.history.get(&node).copied().unwrap_or(0.0)
            + over as f64 * self.config.present_factor
    }

    /// See [`Router::route`](crate::Router::route).
    pub fn route(
        &self,
        signal: SignalId,
        sources: &[RNode],
        target: RNode,
        intended_elapsed: Option<u32>,
    ) -> Option<RoutedPath> {
        self.route_filtered(signal, sources, target, intended_elapsed, |_| true)
    }

    /// See [`Router::route_filtered`](crate::Router::route_filtered).
    pub fn route_filtered(
        &self,
        signal: SignalId,
        sources: &[RNode],
        target: RNode,
        intended_elapsed: Option<u32>,
        allowed: impl Fn(RNode) -> bool,
    ) -> Option<RoutedPath> {
        let constraint = match intended_elapsed {
            Some(e) => Elapsed::Exact(e),
            None => Elapsed::AtMost(self.config.default_elapsed_cap),
        };
        self.route_constrained(signal, sources, target, constraint, allowed)
    }

    /// See [`Router::route_constrained`](crate::Router::route_constrained).
    pub fn route_constrained(
        &self,
        signal: SignalId,
        sources: &[RNode],
        target: RNode,
        constraint: Elapsed,
        allowed: impl Fn(RNode) -> bool,
    ) -> Option<RoutedPath> {
        let (cap, intended_elapsed) = match constraint {
            Elapsed::Exact(e) => (e, Some(e)),
            Elapsed::AtMost(m) => (m, None),
        };
        let mut dist: HashMap<(RNode, u32), f64> = HashMap::new();
        let mut prev: HashMap<(RNode, u32), (RNode, u32)> = HashMap::new();
        let mut heap = BinaryHeap::new();
        for &src in sources {
            debug_assert!(self.mrrg.contains(src), "source {src:?} outside MRRG");
            let at_target = src == target && intended_elapsed.is_none_or(|e| e == 0);
            if at_target {
                return Some(RoutedPath { signal, nodes: vec![src], elapsed: 0, cost: 0.0 });
            }
            dist.insert((src, 0), 0.0);
            heap.push(HeapEntry { cost: 0.0, node: src, elapsed: 0 });
        }
        let ii = self.mrrg.ii() as u32;
        while let Some(HeapEntry { cost, node, elapsed }) = heap.pop() {
            if dist.get(&(node, elapsed)).is_some_and(|&d| cost > d) {
                continue;
            }
            if node == target && (elapsed > 0 || !sources.contains(&node)) {
                // Popped the target: minimal cost confirmed (exact-elapsed
                // filtering happened at insertion).
                let mut nodes = vec![node];
                let mut cur = (node, elapsed);
                while let Some(&p) = prev.get(&cur) {
                    nodes.push(p.0);
                    cur = p;
                }
                nodes.reverse();
                return Some(RoutedPath { signal, nodes, elapsed, cost });
            }
            // Never expand out of a consumer FU; producer FUs (sources) were
            // seeded with elapsed 0 and get their one expansion.
            if node.kind == RKind::Fu && elapsed > 0 {
                continue;
            }
            for succ in self.mrrg.successors(node) {
                let dt = (succ.t + ii - node.t) % ii;
                let next_elapsed = elapsed + dt;
                if next_elapsed > cap {
                    continue;
                }
                // FU nodes only terminate a path; Mem nodes only start one.
                if succ.kind == RKind::Mem {
                    continue;
                }
                let is_target = succ == target;
                if succ.kind == RKind::Fu && !is_target {
                    continue;
                }
                if !is_target && !allowed(succ) {
                    continue;
                }
                if is_target {
                    if let Some(exact) = intended_elapsed {
                        if next_elapsed != exact {
                            continue;
                        }
                    }
                }
                let step = if is_target { 0.0 } else { self.node_cost(succ, signal) };
                let next_cost = cost + step;
                let key = (succ, next_elapsed);
                if dist.get(&key).is_none_or(|&d| next_cost < d) {
                    dist.insert(key, next_cost);
                    prev.insert(key, (node, elapsed));
                    heap.push(HeapEntry { cost: next_cost, node: succ, elapsed: next_elapsed });
                }
            }
        }
        None
    }

    /// See [`Router::route_timed`](crate::Router::route_timed).
    pub fn route_timed(
        &self,
        signal: SignalId,
        sources: &[(RNode, i64)],
        target: RNode,
        target_abs: i64,
        allowed: impl Fn(RNode) -> bool,
    ) -> Option<RoutedPath> {
        let base = sources.iter().map(|&(_, abs)| abs).min()?;
        let need = u32::try_from(target_abs - base).ok()?;
        let mut dist: HashMap<(RNode, u32), f64> = HashMap::new();
        let mut prev: HashMap<(RNode, u32), (RNode, u32)> = HashMap::new();
        let mut heap = BinaryHeap::new();
        for &(src, abs) in sources {
            if abs > target_abs {
                continue;
            }
            let offset = (abs - base) as u32;
            if src == target && offset == need {
                return Some(RoutedPath { signal, nodes: vec![src], elapsed: 0, cost: 0.0 });
            }
            let key = (src, offset);
            if dist.get(&key).is_none_or(|&d| d > 0.0) {
                dist.insert(key, 0.0);
                heap.push(HeapEntry { cost: 0.0, node: src, elapsed: offset });
            }
        }
        let ii = self.mrrg.ii() as u32;
        while let Some(HeapEntry { cost, node, elapsed }) = heap.pop() {
            if dist.get(&(node, elapsed)).is_some_and(|&d| cost > d) {
                continue;
            }
            if node == target && elapsed == need && prev.contains_key(&(node, elapsed)) {
                let mut nodes = vec![node];
                let mut cur = (node, elapsed);
                while let Some(&p) = prev.get(&cur) {
                    nodes.push(p.0);
                    cur = p;
                }
                nodes.reverse();
                let first_offset = cur.1;
                return Some(RoutedPath { signal, nodes, elapsed: need - first_offset, cost });
            }
            if node.kind == RKind::Fu && prev.contains_key(&(node, elapsed)) {
                continue; // only source FUs may expand
            }
            for succ in self.mrrg.successors(node) {
                let dt = (succ.t + ii - node.t) % ii;
                let next_elapsed = elapsed + dt;
                if next_elapsed > need || succ.kind == RKind::Mem {
                    continue;
                }
                let is_target = succ == target;
                if succ.kind == RKind::Fu && !is_target {
                    continue;
                }
                if is_target && next_elapsed != need {
                    continue;
                }
                if !is_target && !allowed(succ) {
                    continue;
                }
                let step = if is_target { 0.0 } else { self.node_cost(succ, signal) };
                let next_cost = cost + step;
                let key = (succ, next_elapsed);
                if dist.get(&key).is_none_or(|&d| next_cost < d) {
                    dist.insert(key, next_cost);
                    prev.insert(key, (node, elapsed));
                    heap.push(HeapEntry { cost: next_cost, node: succ, elapsed: next_elapsed });
                }
            }
        }
        None
    }

    /// See [`Router::add_history`](crate::Router::add_history).
    pub fn add_history(&mut self, node: RNode, amount: f64) {
        *self.history.entry(node).or_insert(0.0) += amount;
    }

    /// See [`Router::fu_distances`](crate::Router::fu_distances).
    pub fn fu_distances(
        &self,
        signal: SignalId,
        sources: &[RNode],
        cap: u32,
    ) -> HashMap<(RNode, u32), f64> {
        let mut dist: HashMap<(RNode, u32), f64> = HashMap::new();
        let mut fu_costs: HashMap<(RNode, u32), f64> = HashMap::new();
        let mut heap = BinaryHeap::new();
        for &src in sources {
            dist.insert((src, 0), 0.0);
            heap.push(HeapEntry { cost: 0.0, node: src, elapsed: 0 });
        }
        let ii = self.mrrg.ii() as u32;
        while let Some(HeapEntry { cost, node, elapsed }) = heap.pop() {
            if dist.get(&(node, elapsed)).is_some_and(|&d| cost > d) {
                continue;
            }
            if node.kind == RKind::Fu && elapsed > 0 {
                continue;
            }
            for succ in self.mrrg.successors(node) {
                let dt = (succ.t + ii - node.t) % ii;
                let next_elapsed = elapsed + dt;
                if next_elapsed > cap || succ.kind == RKind::Mem {
                    continue;
                }
                if succ.kind == RKind::Fu {
                    // Terminal: record, do not expand.
                    let key = (succ, next_elapsed);
                    if fu_costs.get(&key).is_none_or(|&d| cost < d) {
                        fu_costs.insert(key, cost);
                    }
                    continue;
                }
                let next_cost = cost + self.node_cost(succ, signal);
                let key = (succ, next_elapsed);
                if dist.get(&key).is_none_or(|&d| next_cost < d) {
                    dist.insert(key, next_cost);
                    heap.push(HeapEntry { cost: next_cost, node: succ, elapsed: next_elapsed });
                }
            }
        }
        fu_costs
    }

    /// See [`Router::route_one`](crate::Router::route_one).
    pub fn route_one(
        &self,
        signal: SignalId,
        source: RNode,
        target: RNode,
        intended_elapsed: Option<u32>,
    ) -> Option<RoutedPath> {
        self.route(signal, &[source], target, intended_elapsed)
    }

    /// See [`Router::commit`](crate::Router::commit).
    pub fn commit(&mut self, path: &RoutedPath) {
        for (idx, &node) in path.nodes.iter().enumerate() {
            let endpoint = idx == 0 || idx == path.nodes.len() - 1;
            if endpoint && node.kind == RKind::Fu {
                continue;
            }
            let occupants = self.present.entry(node).or_default();
            if !occupants.contains(&path.signal) {
                occupants.push(path.signal);
            }
        }
    }

    /// See [`Router::rip_up`](crate::Router::rip_up).
    pub fn rip_up(&mut self, path: &RoutedPath) {
        for (idx, &node) in path.nodes.iter().enumerate() {
            let endpoint = idx == 0 || idx == path.nodes.len() - 1;
            if endpoint && node.kind == RKind::Fu {
                continue;
            }
            if let Some(occupants) = self.present.get_mut(&node) {
                occupants.retain(|&s| s != path.signal);
                if occupants.is_empty() {
                    self.present.remove(&node);
                }
            }
        }
    }

    /// See [`Router::place`](crate::Router::place).
    pub fn place(&mut self, node: RNode, signal: SignalId) {
        let occupants = self.present.entry(node).or_default();
        if !occupants.contains(&signal) {
            occupants.push(signal);
        }
    }

    /// See [`Router::unplace`](crate::Router::unplace).
    pub fn unplace(&mut self, node: RNode, signal: SignalId) {
        if let Some(occupants) = self.present.get_mut(&node) {
            occupants.retain(|&s| s != signal);
            if occupants.is_empty() {
                self.present.remove(&node);
            }
        }
    }

    /// See [`Router::occupants`](crate::Router::occupants).
    pub fn occupants(&self, node: RNode) -> &[SignalId] {
        self.present.get(&node).map_or(&[], |v| v.as_slice())
    }

    /// See [`Router::oversubscribed`](crate::Router::oversubscribed).
    pub fn oversubscribed(&self) -> Vec<RNode> {
        let mut out: Vec<RNode> = self
            .present
            .iter()
            .filter(|(node, occupants)| occupants.len() > self.mrrg.spec().capacity(node.kind))
            .map(|(&node, _)| node)
            .collect();
        out.sort();
        out
    }

    /// See [`Router::bump_history`](crate::Router::bump_history).
    pub fn bump_history(&mut self) -> usize {
        let over = self.oversubscribed();
        for &node in &over {
            let occupants = self.present[&node].len();
            let excess = occupants - self.mrrg.spec().capacity(node.kind);
            *self.history.entry(node).or_insert(0.0) +=
                self.config.history_increment * excess as f64;
        }
        over.len()
    }

    /// See [`Router::clear_present`](crate::Router::clear_present).
    pub fn clear_present(&mut self) {
        self.present.clear();
    }

    /// See [`Router::reset`](crate::Router::reset).
    pub fn reset(&mut self) {
        self.present.clear();
        self.history.clear();
    }
}
