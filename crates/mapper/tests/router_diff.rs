//! Differential tests pinning the flat-array router to the HashMap
//! reference implementation.
//!
//! `Router` (dense `RIdx`-indexed state over the shared `MrrgIndex`) and
//! `ReferenceRouter` (the original per-call HashMap implementation) must be
//! *bit-identical*: same path nodes, same elapsed counts, and the same cost
//! down to the floating-point bit pattern, under congestion, history and
//! rip-up alike. Any divergence means the dense refactor changed routing
//! behavior rather than just its speed.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use himap_cgra::{CgraSpec, Mrrg, PeId, RKind, RNode};
use himap_mapper::{Elapsed, ReferenceRouter, RoutedPath, Router, RouterConfig, SignalId};
use proptest::prelude::*;

/// Everything observable about a routing answer, with the cost as raw bits
/// so `assert_eq` is exact (NaN included).
fn fingerprint(p: &Option<RoutedPath>) -> Option<(Vec<RNode>, u32, u64)> {
    p.as_ref().map(|p| (p.nodes.clone(), p.elapsed, p.cost.to_bits()))
}

fn pair(rows: usize, cols: usize, ii: usize) -> (Router, ReferenceRouter) {
    let spec = CgraSpec::mesh(rows, cols).expect("non-empty mesh");
    let dense = Router::new(Mrrg::new(spec.clone(), ii), RouterConfig::default());
    let legacy = ReferenceRouter::new(Mrrg::new(spec, ii), RouterConfig::default());
    (dense, legacy)
}

fn fu(x: usize, y: usize, t: usize, ii: usize) -> RNode {
    RNode::new(PeId::new(x, y), (t % ii) as u32, RKind::Fu)
}

fn arb_dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..4, 1usize..4, 1usize..5)
}

proptest! {
    #[test]
    fn route_one_parity_on_clean_state(
        (rows, cols, ii) in arb_dims(),
        sx in 0usize..4, sy in 0usize..4,
        dx in 0usize..4, dy in 0usize..4,
        elapsed in 0u32..8,
    ) {
        let (mut dense, legacy) = pair(rows, cols, ii);
        let src = fu(sx % rows, sy % cols, 0, ii);
        let dst = fu(dx % rows, dy % cols, elapsed as usize, ii);
        let a = dense.route_one(SignalId(0), src, dst, Some(elapsed));
        let b = legacy.route_one(SignalId(0), src, dst, Some(elapsed));
        prop_assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn route_constrained_at_most_parity(
        (rows, cols, ii) in arb_dims(),
        sx in 0usize..4, sy in 0usize..4,
        dx in 0usize..4, dy in 0usize..4,
        cap in 0u32..10,
    ) {
        let (mut dense, legacy) = pair(rows, cols, ii);
        let src = fu(sx % rows, sy % cols, 0, ii);
        let dst = fu(dx % rows, dy % cols, 1, ii);
        let a = dense.route_constrained(SignalId(3), &[src], dst, Elapsed::AtMost(cap), |_| true);
        let b = legacy.route_constrained(SignalId(3), &[src], dst, Elapsed::AtMost(cap), |_| true);
        prop_assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn congested_negotiation_parity(
        (rows, cols, ii) in arb_dims(),
        queries in proptest::collection::vec(
            (0usize..4, 0usize..4, 0usize..4, 0usize..4, 1u32..6), 0..10),
    ) {
        // Replay one negotiation round on both routers: route, commit,
        // penalize, and re-route — every observable must stay identical.
        let (mut dense, mut legacy) = pair(rows, cols, ii);
        for (i, &(sx, sy, dx, dy, elapsed)) in queries.iter().enumerate() {
            let src = fu(sx % rows, sy % cols, 0, ii);
            let dst = fu(dx % rows, dy % cols, elapsed as usize, ii);
            let signal = SignalId(i as u32);
            let a = dense.route_one(signal, src, dst, Some(elapsed));
            let b = legacy.route_one(signal, src, dst, Some(elapsed));
            prop_assert_eq!(fingerprint(&a), fingerprint(&b), "query {}", i);
            if let (Some(pa), Some(pb)) = (a, b) {
                dense.commit(&pa);
                legacy.commit(&pb);
            }
        }
        prop_assert_eq!(dense.oversubscribed(), legacy.oversubscribed());
        prop_assert_eq!(dense.bump_history(), legacy.bump_history());
        // After history penalties the searches must still agree.
        dense.clear_present();
        legacy.clear_present();
        if let Some(&(sx, sy, dx, dy, elapsed)) = queries.first() {
            let src = fu(sx % rows, sy % cols, 0, ii);
            let dst = fu(dx % rows, dy % cols, elapsed as usize, ii);
            let a = dense.route_one(SignalId(99), src, dst, Some(elapsed));
            let b = legacy.route_one(SignalId(99), src, dst, Some(elapsed));
            prop_assert_eq!(fingerprint(&a), fingerprint(&b));
        }
    }

    #[test]
    fn route_timed_parity(
        (rows, cols, ii) in arb_dims(),
        dx in 0usize..4, dy in 0usize..4,
        target_abs in 1i64..8,
    ) {
        let (mut dense, legacy) = pair(rows, cols, ii);
        let sources = [(fu(0, 0, 0, ii), 0i64)];
        let dst = fu(dx % rows, dy % cols, target_abs as usize, ii);
        let a = dense.route_timed(SignalId(7), &sources, dst, target_abs, |_| true);
        let b = legacy.route_timed(SignalId(7), &sources, dst, target_abs, |_| true);
        prop_assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn fu_distances_parity(
        (rows, cols, ii) in arb_dims(),
        sx in 0usize..4, sy in 0usize..4,
        cap in 1u32..7,
    ) {
        let (mut dense, legacy) = pair(rows, cols, ii);
        let src = fu(sx % rows, sy % cols, 0, ii);
        let norm = |m: std::collections::HashMap<(RNode, u32), f64>| {
            let mut v: Vec<((RNode, u32), u64)> =
                m.into_iter().map(|(k, c)| (k, c.to_bits())).collect();
            v.sort_unstable_by_key(|e| e.0);
            v
        };
        let a = norm(dense.fu_distances(SignalId(1), &[src], cap));
        let b = norm(legacy.fu_distances(SignalId(1), &[src], cap));
        prop_assert_eq!(a, b);
    }
}

/// A dense integration-style sweep: many committed routes on one router
/// pair, with a rip-up in the middle. Covers the scratch-reuse path (every
/// query after the first reuses the epoch-stamped arrays).
#[test]
fn committed_sweep_with_rip_up_stays_identical() {
    let (mut dense, mut legacy) = pair(4, 4, 2);
    let mut committed: Vec<(RoutedPath, RoutedPath)> = Vec::new();
    let mut signal = 0u32;
    for sx in 0..4 {
        for dy in 0..4 {
            let src = fu(sx, 0, 0, 2);
            let dst = fu(3 - sx, dy, 3, 2);
            let a = dense.route_one(SignalId(signal), src, dst, Some(3));
            let b = legacy.route_one(SignalId(signal), src, dst, Some(3));
            assert_eq!(fingerprint(&a), fingerprint(&b), "query s{sx} d{dy}");
            if let (Some(pa), Some(pb)) = (a, b) {
                dense.commit(&pa);
                legacy.commit(&pb);
                committed.push((pa, pb));
            }
            signal += 1;
        }
    }
    assert!(!committed.is_empty(), "the sweep must route something");
    assert_eq!(dense.oversubscribed(), legacy.oversubscribed());
    // Rip up every other committed path and verify occupancy agreement at
    // every node either path visited.
    for (i, (pa, pb)) in committed.iter().enumerate() {
        if i % 2 == 0 {
            dense.rip_up(pa);
            legacy.rip_up(pb);
        }
    }
    assert_eq!(dense.oversubscribed(), legacy.oversubscribed());
    for (pa, _) in &committed {
        for &node in &pa.nodes {
            assert_eq!(dense.occupants(node), legacy.occupants(node), "occupants of {node:?}");
        }
    }
    // Full reset brings both back to a clean, still-identical state.
    dense.reset();
    legacy.reset();
    let a = dense.route_one(SignalId(500), fu(0, 0, 0, 2), fu(3, 3, 0, 2), None);
    let b = legacy.route_one(SignalId(500), fu(0, 0, 0, 2), fu(3, 3, 0, 2), None);
    assert_eq!(fingerprint(&a), fingerprint(&b));
}
