//! Criterion micro/meso benchmarks of the mapping pipeline.
//!
//! These complement the figure generators: `fig7`/`fig8` regenerate the
//! paper's evaluation, while these benches track the cost of the pipeline
//! stages (DFG construction, systolic search, full HiMap runs, the SPR
//! baseline) for regression purposes.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use himap_baseline::{BaselineOptions, SprMapper};
use himap_cgra::{CgraSpec, Mrrg, MrrgIndex, PeId, RKind, RNode};
use himap_core::{HiMap, HiMapOptions};
use himap_dfg::Dfg;
use himap_kernels::suite;
use himap_mapper::{ReferenceRouter, Router, RouterConfig, SignalId};
use himap_systolic::{search, SearchConfig};

fn bench_dfg_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("dfg_build");
    for (kernel, block) in [
        (suite::gemm(), vec![8usize, 8, 8]),
        (suite::bicg(), vec![16, 16]),
        (suite::ttm(), vec![4, 4, 4, 4]),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kernel.name().to_string()),
            &(kernel, block),
            |b, (kernel, block)| {
                b.iter(|| Dfg::build(kernel, block).expect("builds"));
            },
        );
    }
    group.finish();
}

fn bench_systolic_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("systolic_search");
    for (kernel, block, rows, cols) in [
        (suite::gemm(), vec![4usize, 4, 4], 4usize, 4usize),
        (suite::ttm(), vec![4, 4, 4, 4], 4, 4),
    ] {
        let dfg = Dfg::build(&kernel, &block).expect("builds");
        let isdg = dfg.isdg();
        let config = SearchConfig {
            dims: kernel.dims(),
            block,
            vsa_rows: rows,
            vsa_cols: cols,
            mesh_deps: isdg.distances().to_vec(),
            mem_deps: dfg.mem_dep_distances(),
            anti_deps: dfg.anti_dep_distances(),
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(kernel.name().to_string()),
            &config,
            |b, config| {
                b.iter(|| search(config));
            },
        );
    }
    group.finish();
}

fn bench_himap_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("himap_map");
    group.sample_size(10);
    for (name, cgra) in [("gemm", 8usize), ("bicg", 4), ("floyd-warshall", 4)] {
        let kernel = suite::by_name(name).expect("kernel exists");
        let spec = CgraSpec::square(cgra);
        group.bench_with_input(
            BenchmarkId::new(name, format!("{cgra}x{cgra}")),
            &(kernel, spec),
            |b, (kernel, spec)| {
                b.iter(|| HiMap::new(HiMapOptions::default()).map(kernel, spec).expect("maps"));
            },
        );
    }
    group.finish();
}

fn bench_parallel_scaling(c: &mut Criterion) {
    // Wall-clock scaling of the work-queue candidate scheduler with
    // requested worker threads, under production options (machine clamp and
    // sequential fallback active). The winning mapping is identical at every
    // thread count; on a machine with fewer cores than requested threads the
    // clamp must keep the higher counts at sequential speed instead of
    // oversubscribing. Mirrors the `parallel_scaling` rows of
    // `BENCH_pr4.json`.
    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);
    for (name, cgra) in [
        ("gemm", 4usize),
        ("gemm", 8),
        ("bicg", 4),
        ("bicg", 8),
        ("floyd-warshall", 4),
        ("floyd-warshall", 8),
    ] {
        let kernel = suite::by_name(name).expect("kernel exists");
        let spec = CgraSpec::square(cgra);
        for threads in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("{name}_{cgra}x{cgra}"), threads),
                &threads,
                |b, &threads| {
                    let options = HiMapOptions { threads, ..HiMapOptions::default() };
                    b.iter(|| HiMap::new(options.clone()).map(&kernel, &spec).expect("maps"));
                },
            );
        }
    }
    group.finish();
}

/// The `route_timed` query sweep both router benchmarks replay: three
/// source corners to every PE of an 8x8 array, each at its shortest
/// feasible absolute deadline plus one wait cycle.
fn router_queries(rows: usize, cols: usize, ii: usize) -> Vec<(RNode, RNode, i64)> {
    let mut queries = Vec::new();
    for (sx, sy) in [(0usize, 0usize), (rows / 2, cols / 2), (rows - 1, cols - 1)] {
        let src = RNode::new(PeId::new(sx, sy), 0, RKind::Fu);
        for dx in 0..rows {
            for dy in 0..cols {
                let dist = sx.abs_diff(dx) + sy.abs_diff(dy);
                let abs = dist as i64 + 1;
                let dst = RNode::new(PeId::new(dx, dy), (abs % ii as i64) as u32, RKind::Fu);
                queries.push((src, dst, abs));
            }
        }
    }
    queries
}

fn bench_route_timed(c: &mut Criterion) {
    // The dense flat-array router against the HashMap reference on an 8x8
    // array — the headline number of the resource-index refactor. Both
    // replay the identical query sweep on a clean (uncongested) router, the
    // dominant routing regime of the candidate walk.
    let mut group = c.benchmark_group("route_timed");
    let spec = CgraSpec::square(8);
    let ii = 4usize;
    let queries = router_queries(8, 8, ii);
    group.bench_function("indexed_8x8", |b| {
        let mut router = Router::new(Mrrg::new(spec.clone(), ii), RouterConfig::default());
        b.iter(|| {
            for (i, &(src, dst, abs)) in queries.iter().enumerate() {
                let path = router.route_timed(SignalId(i as u32), &[(src, 0)], dst, abs, |_| true);
                black_box(path);
            }
        });
    });
    group.bench_function("hashmap_8x8", |b| {
        let router = ReferenceRouter::new(Mrrg::new(spec.clone(), ii), RouterConfig::default());
        b.iter(|| {
            for (i, &(src, dst, abs)) in queries.iter().enumerate() {
                let path = router.route_timed(SignalId(i as u32), &[(src, 0)], dst, abs, |_| true);
                black_box(path);
            }
        });
    });
    group.finish();
}

fn bench_index_build(c: &mut Criterion) {
    // Cold CSR compilation cost per (spec, II) — paid once per pair thanks
    // to the shared cache, amortized across every candidate thread.
    let mut group = c.benchmark_group("mrrg_index_build");
    for size in [4usize, 8, 16] {
        let spec = CgraSpec::square(size);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{size}x{size}_ii4")),
            &spec,
            |b, spec| {
                b.iter(|| black_box(MrrgIndex::new(spec.clone(), 4)));
            },
        );
    }
    group.finish();
}

fn bench_spr_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("spr_baseline");
    group.sample_size(10);
    let dfg = Dfg::build(&suite::gemm(), &[3, 3, 3]).expect("builds");
    let spec = CgraSpec::square(4);
    group.bench_function("gemm_3x3x3_on_4x4", |b| {
        b.iter(|| SprMapper::run(&dfg, &spec, &BaselineOptions::default()).expect("maps"));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dfg_build,
    bench_systolic_search,
    bench_himap_end_to_end,
    bench_parallel_scaling,
    bench_route_timed,
    bench_index_build,
    bench_spr_baseline
);
criterion_main!(benches);
