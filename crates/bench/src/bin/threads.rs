//! Thread-scaling sweep of the parallel candidate walk.
//!
//! Maps each kernel on an 8x8 (and GEMM additionally on a 16x16) CGRA with
//! 1, 2 and 4 worker threads, printing wall time, speedup over the
//! sequential walk and the winning mapping's pipeline summary. The mapping
//! itself is thread-invariant — only the wall time and the instrumentation
//! counters (extra candidates tried past the winner, abandoned evaluations)
//! may differ — and the sweep asserts that invariance on every point.
//!
//! Run with `cargo run -p himap-bench --release --bin threads`. Pass
//! `--threads 1,2,4,8` to change the sweep. Speedups depend on how many
//! candidates precede the winner (BiCG walks past four failing candidates,
//! GEMM's first candidate wins) and on the machine's core count.

// Bench drivers fail loudly on setup errors, like tests.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use himap_bench::{markdown_table, run_himap_with_stats};
use himap_core::HiMapOptions;
use himap_kernels::suite;

fn main() {
    let threads = parse_threads().unwrap_or_else(|| vec![1, 2, 4]);
    let points = [("gemm", 8usize), ("bicg", 8), ("floyd-warshall", 8), ("atax", 8), ("gemm", 16)];
    let mut rows = Vec::new();
    for (name, c) in points {
        let kernel = suite::by_name(name).expect("kernel exists");
        let mut sequential: Option<(f64, (usize, usize, usize))> = None;
        for &t in &threads {
            let options = HiMapOptions { threads: t, ..HiMapOptions::default() };
            let (mapping, stats, time) = run_himap_with_stats(&kernel, c, &options);
            let secs = time.as_secs_f64();
            let (util, shape) = match &mapping {
                Some(m) => (m.utilization(), m.stats().sub_shape),
                None => (0.0, (0, 0, 0)),
            };
            match &sequential {
                None => sequential = Some((secs, shape)),
                Some((_, seq_shape)) => assert_eq!(
                    shape, *seq_shape,
                    "{name} on {c}x{c}: winner diverged at {t} threads"
                ),
            }
            let speedup = sequential.as_ref().map_or(1.0, |(seq, _)| seq / secs);
            eprintln!("{name} {c}x{c} threads={t}:\n{}", stats.summary());
            rows.push(vec![
                name.to_string(),
                format!("{c}x{c}"),
                t.to_string(),
                format!("{secs:.2}s"),
                format!("{speedup:.2}x"),
                format!("{:.0}%", util * 100.0),
                format!("{}/{}", stats.candidates_tried, stats.candidates_enumerated),
                stats.candidates_abandoned.to_string(),
            ]);
        }
    }
    println!("# Thread-scaling sweep — parallel candidate walk\n");
    print!(
        "{}",
        markdown_table(
            &["kernel", "CGRA", "threads", "wall", "speedup", "U", "tried/enum", "abandoned"],
            &rows,
        )
    );
    println!();
    println!(
        "The winning mapping is identical at every thread count; the walk \
         parallelizes the search for it. Speedup appears when failing \
         candidates precede the winner and cores are available."
    );
}

fn parse_threads() -> Option<Vec<usize>> {
    let args: Vec<String> = std::env::args().collect();
    let idx = args.iter().position(|a| a == "--threads")?;
    let list: Vec<usize> =
        args.get(idx + 1)?.split(',').filter_map(|t| t.trim().parse().ok()).collect();
    (!list.is_empty()).then_some(list)
}
