//! Regenerates Fig. 7: utilization, performance (MOPS) and power efficiency
//! (MOPS/mW) of BHC vs HiMap across CGRA sizes.
//!
//! Run with `cargo run -p himap-bench --release --bin fig7`. Pass
//! `--sizes 4,8` to restrict the sweep (a full run covers 4–32 and takes
//! minutes because the baselines are slow by design).

// Bench drivers fail loudly on setup errors, like tests.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use himap_bench::{compare, figure_baseline_options, markdown_table, ComparisonPoint, FIG7_SIZES};
use himap_core::HiMapOptions;
use himap_kernels::suite;

fn main() {
    let sizes = parse_sizes().unwrap_or_else(|| FIG7_SIZES.to_vec());
    let himap_options = HiMapOptions::default();
    let baseline_options = figure_baseline_options();
    let mut rows = Vec::new();
    let mut util_ratios = Vec::new();
    let mut perf_ratios = Vec::new();
    let mut eff_ratios = Vec::new();
    for kernel in suite::all() {
        for &c in &sizes {
            let p = compare(&kernel, c, &himap_options, &baseline_options);
            let himap_mops = ComparisonPoint::mops(c, p.himap_util);
            let bhc_mops = ComparisonPoint::mops(c, p.bhc_util);
            let himap_eff = ComparisonPoint::mops_per_mw(c, p.himap_util);
            let bhc_eff = ComparisonPoint::mops_per_mw(c, p.bhc_util);
            if p.bhc_util > 0.0 {
                util_ratios.push(p.himap_util / p.bhc_util);
                perf_ratios.push(himap_mops / bhc_mops);
                eff_ratios.push(himap_eff / bhc_eff);
            }
            rows.push(vec![
                p.kernel.clone(),
                format!("{c}x{c}"),
                format!("{:.0}%", p.bhc_util * 100.0),
                format!("{:.0}%", p.himap_util * 100.0),
                format!("{bhc_mops:.0}"),
                format!("{himap_mops:.0}"),
                format!("{bhc_eff:.1}"),
                format!("{himap_eff:.1}"),
            ]);
            eprintln!(
                "measured {} {c}x{c}: himap {:.2} ({:?}), bhc {:.2} ({:?})",
                p.kernel, p.himap_util, p.himap_time, p.bhc_util, p.bhc_time
            );
        }
    }
    println!("# Fig. 7 — BHC vs HiMap across CGRA sizes\n");
    print!(
        "{}",
        markdown_table(
            &[
                "kernel",
                "CGRA",
                "BHC util",
                "HiMap util",
                "BHC MOPS",
                "HiMap MOPS",
                "BHC MOPS/mW",
                "HiMap MOPS/mW",
            ],
            &rows
        )
    );
    println!();
    let gm = |v: &[f64]| -> f64 {
        if v.is_empty() {
            return f64::NAN;
        }
        (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp()
    };
    println!(
        "Geometric-mean HiMap/BHC ratios over points where BHC succeeded: \
         utilization {:.1}x, performance {:.1}x, power efficiency {:.1}x.",
        gm(&util_ratios),
        gm(&perf_ratios),
        gm(&eff_ratios)
    );
    println!(
        "(Paper: 2.8x average utilization, 17.3x performance, 5x power \
         efficiency — performance/efficiency ratios grow with CGRA size; \
         include 64x64 points for larger ratios.)"
    );
}

fn parse_sizes() -> Option<Vec<usize>> {
    let args: Vec<String> = std::env::args().collect();
    let idx = args.iter().position(|a| a == "--sizes")?;
    let spec = args.get(idx + 1)?;
    Some(spec.split(',').filter_map(|s| s.trim().parse().ok()).collect())
}
