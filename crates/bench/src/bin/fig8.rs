//! Regenerates Fig. 8: compilation time of BHC and HiMap for increasing
//! block sizes, with the CGRA matched to the block (`c = b`).
//!
//! Run with `cargo run -p himap-bench --release --bin fig8`. Pass
//! `--max <b>` to cap the sweep. The paper sweeps to 64; the 4-D TTM sweep
//! is capped by default (the fully unrolled 64^4 block does not fit in
//! memory — see EXPERIMENTS.md).

// Bench drivers fail loudly on setup errors, like tests.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::time::{Duration, Instant};

use himap_baseline::{bhc, BaselineOptions};
use himap_bench::markdown_table;
use himap_cgra::CgraSpec;
use himap_core::{HiMap, HiMapOptions};
use himap_dfg::Dfg;
use himap_kernels::suite;

/// The paper's block-size sweep (Fig. 8 x-axis).
const SWEEP: [usize; 12] = [2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 32, 64];

fn main() {
    let max = parse_max().unwrap_or(64);
    let kernels = [(suite::mvt(), 64usize), (suite::gemm(), 64), (suite::ttm(), 16)];
    let baseline_options =
        BaselineOptions { timeout: Duration::from_secs(30), ..BaselineOptions::default() };
    let mut rows = Vec::new();
    for (kernel, cap) in kernels {
        for &b in SWEEP.iter().filter(|&&b| b <= cap.min(max)) {
            let spec = CgraSpec::square(b);
            // HiMap with the block matched to the CGRA (paper: b = c).
            let himap_options = HiMapOptions { free_extents: vec![b], ..HiMapOptions::default() };
            let start = Instant::now();
            let (himap, pipeline) = HiMap::new(himap_options).map_with_stats(&kernel, &spec);
            let himap_time = start.elapsed();
            let himap_cell = match &himap {
                Ok(m) => {
                    format!("{:.2}s (U={:.0}%)", himap_time.as_secs_f64(), m.utilization() * 100.0)
                }
                Err(e) => format!("failed: {e}"),
            };
            // BHC on the same whole block.
            let block = vec![b; kernel.dims()];
            let start = Instant::now();
            let bhc_cell = match Dfg::build(&kernel, &block) {
                Ok(dfg) => {
                    let result = bhc(&dfg, &spec, &baseline_options);
                    let elapsed = start.elapsed();
                    match result.best() {
                        Some(m) => format!(
                            "{:.2}s (U={:.0}%)",
                            elapsed.as_secs_f64(),
                            m.utilization * 100.0
                        ),
                        None => {
                            let why = match (&result.spr, &result.sa) {
                                (Err(a), _) => a.to_string(),
                                (_, Err(b)) => b.to_string(),
                                _ => unreachable!("best() is None only on double failure"),
                            };
                            format!("failed: {why}")
                        }
                    }
                }
                Err(e) => format!("failed: {e}"),
            };
            eprintln!(
                "{} b={b}: himap {himap_cell} | bhc {bhc_cell}\n{}",
                kernel.name(),
                pipeline.summary()
            );
            rows.push(vec![kernel.name().to_string(), b.to_string(), bhc_cell, himap_cell]);
        }
    }
    println!("# Fig. 8 — compilation time vs block size (c = b)\n");
    print!("{}", markdown_table(&["kernel", "block/CGRA size b", "BHC", "HiMap"], &rows));
    println!();
    println!(
        "HiMap compile time stays within seconds across the sweep because \
         the number of unique iterations is block-size independent; BHC \
         fails past the 400-node DFG limit (the paper: beyond block sizes \
         8/5/4 for MVT/GEMM/TTM, after days of compile time)."
    );
}

fn parse_max() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    let idx = args.iter().position(|a| a == "--max")?;
    args.get(idx + 1)?.parse().ok()
}
