//! Regenerates Table II: characteristics of the multi-dimensional kernels
//! and their (measured) number of unique iterations.

// Bench drivers fail loudly on setup errors, like tests.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use himap_bench::markdown_table;
use himap_cgra::CgraSpec;
use himap_core::{HiMap, HiMapOptions};
use himap_kernels::suite;

fn main() {
    let descriptions = [
        ("adi", "Alternating Direction Implicit solver", 3usize),
        ("atax", "Matrix Transpose and Vector Multiplication", 9),
        ("bicg", "BiCG Sub Kernel of BiCGStab Linear Solver", 9),
        ("mvt", "Matrix Vector Product and Transpose", 9),
        ("gemm", "General Matrix Multiply", 27),
        ("syrk", "Symmetric rank-k operation", 27),
        ("floyd-warshall", "Shortest path and transitive closure", 34),
        ("ttm", "Tucker Decomposition", 45),
    ];
    println!("# Table II — multi-dimensional kernel characteristics\n");
    let mut rows = Vec::new();
    for (name, description, paper_max) in descriptions {
        let kernel = suite::by_name(name).expect("kernel exists");
        // Measure unique iterations across the Fig. 7 CGRA sizes; the count
        // is the maximum observed (it is block-size independent, which is
        // the property the compilation-time scalability rests on).
        let mut measured = 0usize;
        for c in [4usize, 8] {
            if let Ok(m) = HiMap::new(HiMapOptions::default()).map(&kernel, &CgraSpec::square(c)) {
                measured = measured.max(m.stats().unique_iterations);
            }
        }
        rows.push(vec![
            name.to_string(),
            kernel.dims().to_string(),
            description.to_string(),
            measured.to_string(),
            paper_max.to_string(),
        ]);
    }
    print!(
        "{}",
        markdown_table(
            &["benchmark", "loop levels", "description", "measured unique iters", "paper max"],
            &rows
        )
    );
    println!();
    println!(
        "Measured counts are the class counts of the winning mapping on 4x4 \
         and 8x8 CGRAs; all stay within the paper's Table II maxima."
    );
}
