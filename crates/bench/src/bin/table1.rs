//! Regenerates Table I: loop-kernel categorization by dimensionality and
//! inter-iteration dependency.
//!
//! The eight implemented kernels are classified *computationally* by the
//! dependence analysis; the remaining inventory entries carry the paper's
//! published category.

// Bench drivers fail loudly on setup errors, like tests.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use himap_bench::markdown_table;
use himap_kernels::{suite, KernelCategory};

fn main() {
    let inventory = suite::table1_inventory();
    let categories = [
        KernelCategory::NoInterIterationDeps,
        KernelCategory::DepsDim1,
        KernelCategory::DepsDim2,
        KernelCategory::DepsDim3,
        KernelCategory::DepsDim4,
    ];
    println!("# Table I — loop kernel categorization\n");
    let mut rows = Vec::new();
    for category in categories {
        let members: Vec<String> = inventory
            .iter()
            .filter(|e| e.category == category)
            .map(|e| format!("{} ({})", e.name, e.suite))
            .collect();
        rows.push(vec![category.to_string(), members.len().to_string(), members.join(", ")]);
    }
    print!("{}", markdown_table(&["category", "count", "kernels"], &rows));
    println!();
    println!(
        "The eight evaluated kernels are classified by dependence analysis \
         over the affine IR; verify with `cargo test -p himap-kernels`."
    );
}
