//! Ablation study of HiMap's design choices, on the full kernel suite at
//! 4x4 (where the paper reports per-kernel utilizations).
//!
//! Dimensions ablated:
//! * **depth-priority list scheduling** in `MAP()` — off reproduces the
//!   paper's exact utilization profile, on exceeds it;
//! * **replication-aware negotiation** — replica-conflict feedback rounds;
//! * **register-file ports** — the §VI "two r/w ports" vs one vs four;
//! * **time slack** — extra sub-CGRA depths explored beyond the resource
//!   minimum.
//!
//! Run with `cargo run -p himap-bench --release --bin ablation`.

// Bench drivers fail loudly on setup errors, like tests.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use himap_bench::markdown_table;
use himap_cgra::CgraSpec;
use himap_core::{HiMap, HiMapOptions};
use himap_kernels::suite;

fn utilization(kernel: &himap_kernels::Kernel, spec: &CgraSpec, options: &HiMapOptions) -> String {
    match HiMap::new(options.clone()).map(kernel, spec) {
        Ok(m) => format!("{:.0}%", m.utilization() * 100.0),
        Err(_) => "fail".to_string(),
    }
}

fn main() {
    let spec = CgraSpec::square(4);
    let base = HiMapOptions::default();
    let variants: Vec<(&str, HiMapOptions, CgraSpec)> = vec![
        ("default", base.clone(), spec.clone()),
        (
            "paper-order",
            HiMapOptions { depth_priority_scheduling: false, ..base.clone() },
            spec.clone(),
        ),
        (
            "no-feedback",
            HiMapOptions { replication_feedback_rounds: 1, ..base.clone() },
            spec.clone(),
        ),
        ("no-slack", HiMapOptions { max_time_slack: 0, ..base.clone() }, spec.clone()),
        ("1-rf-port", base.clone(), CgraSpec { rf_ports: 1, ..spec.clone() }),
        ("4-rf-ports", base.clone(), CgraSpec { rf_ports: 4, ..spec.clone() }),
    ];
    let mut rows = Vec::new();
    for kernel in suite::all() {
        let mut row = vec![kernel.name().to_string()];
        for (_, options, variant_spec) in &variants {
            row.push(utilization(&kernel, variant_spec, options));
        }
        eprintln!("done {}", kernel.name());
        rows.push(row);
    }
    println!("# Ablation — utilization on 4x4 under design-choice variants\n");
    let mut header = vec!["kernel"];
    for (name, _, _) in &variants {
        header.push(name);
    }
    print!("{}", markdown_table(&header, &rows));
    println!();
    println!(
        "default = depth-priority MAP ordering, 6 replication-feedback \
         rounds, +3 time slack, 2 RF ports (the paper's PE).\n\
         `paper-order` reproduces the paper's exact utilization profile \
         (ADI 83%, BiCG 67%, FW 67%); depth-priority scheduling recovers \
         the losses by interleaving producers with consumers, cutting \
         register pressure."
    );
}
