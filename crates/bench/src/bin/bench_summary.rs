//! Machine-readable benchmark evidence for the work-queue candidate
//! scheduler: thread-scaling medians of the full mapping pipeline on
//! gemm/bicg/floyd-warshall at 4x4 and 8x8, plus the dense-router
//! micro-benchmarks carried over from the resource-index refactor, written
//! to `BENCH_pr4.json`.
//!
//! Run with `cargo run -p himap-bench --release --bin bench_summary`.
//!
//! # Consolidated gate
//!
//! `bench_summary --gate BENCH.json [--tolerance 0.25]` runs every gated
//! surface from one manifest — scaling rows, portfolio races, the
//! fault-model overhead row and the heterogeneity rows — and prints one
//! verdict table. This is the CI entrypoint; the per-surface flags below
//! remain for generating/debugging individual baselines.
//! `bench_summary --gate-baseline` assembles `BENCH.json` by splicing the
//! committed per-PR artifacts and measuring the heterogeneity rows fresh.
//!
//! # Regression mode
//!
//! `bench_summary --check BENCH_pr4.json [--tolerance 0.25]` re-measures
//! every `parallel_scaling` row marked `"check": true` (the fast rows —
//! baseline median ≤ 250 ms) with the same protocol the baseline was
//! generated with (1 warmup run, median of 5), and fails with exit code 1
//! when any fresh median exceeds `baseline * (1 + tolerance) + 2 ms`. The
//! default 25 % tolerance plus 2 ms absolute slack is sized to the observed
//! run-to-run spread of sub-100 ms mapping runs on a loaded CI machine;
//! legitimate regressions from scheduler or router changes are far larger
//! than that (the pre-scheduler parallel walk was 3.4x slower, not 1.25x).
//!
//! # Portfolio-race mode
//!
//! `bench_summary --portfolio` measures the backend-portfolio races
//! (himap vs bhc vs exact, first-feasible) and writes `BENCH_pr6.json`;
//! `bench_summary --portfolio-check BENCH_pr6.json` re-races the gated rows
//! with the same tolerance rule and additionally pins the deterministic
//! winner and its II.

use std::time::{Duration, Instant};

use himap_bench::check::{
    het_rows, limit_ms, parse, race_rows, render, scale_rows, scaling_rows, Json, RowVerdict,
    ScalingRow,
};
use himap_bench::{run_himap, run_himap_tiled};
use himap_cgra::{CapabilityMap, CgraSpec, FaultMap, Mrrg, MrrgIndex, PeId, RKind, RNode};
use himap_core::backend::{race, Backend, BhcBackend, HiMapBackend, MapRequest, RaceMode};
use himap_core::{HiMap, HiMapOptions};
use himap_exact::ExactBackend;
use himap_kernels::suite;
use himap_mapper::{ReferenceRouter, Router, RouterConfig, SignalId};

/// Measurement protocol of every scaling row: one warmup run (primes the
/// shared `MrrgIndex` cache and the allocator), then the median of 5.
const WARMUP: usize = 1;
const SCALING_SAMPLES: usize = 5;

/// Rows at or under this baseline median are cheap enough to re-run in CI
/// and get `"check": true`.
const CHECK_BUDGET_MS: f64 = 250.0;

/// The scaling matrix: every kernel × array side × thread count.
const SCALING_KERNELS: [&str; 3] = ["gemm", "bicg", "floyd-warshall"];
const SCALING_SIZES: [usize; 2] = [4, 8];
const SCALING_THREADS: [usize; 4] = [1, 2, 4, 8];

/// The `route_timed` query sweep (same shape as the criterion bench):
/// three source corners to every PE, each at its shortest feasible
/// absolute deadline plus one wait cycle.
fn router_queries(rows: usize, cols: usize, ii: usize) -> Vec<(RNode, RNode, i64)> {
    let mut queries = Vec::new();
    for (sx, sy) in [(0usize, 0usize), (rows / 2, cols / 2), (rows - 1, cols - 1)] {
        let src = RNode::new(PeId::new(sx, sy), 0, RKind::Fu);
        for dx in 0..rows {
            for dy in 0..cols {
                let dist = sx.abs_diff(dx) + sy.abs_diff(dy);
                let abs = dist as i64 + 1;
                let dst = RNode::new(PeId::new(dx, dy), (abs % ii as i64) as u32, RKind::Fu);
                queries.push((src, dst, abs));
            }
        }
    }
    queries
}

fn median(mut samples: Vec<Duration>) -> Duration {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Times `f` over `samples` runs, returning the median duration.
fn sample(samples: usize, mut f: impl FnMut()) -> Duration {
    let mut out = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        f();
        out.push(start.elapsed());
    }
    median(out)
}

/// Peak resident set size in kilobytes from `/proc/self/status` (`VmHWM`).
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Warmup-then-median wall time of one full mapping run at a thread count —
/// the protocol behind every `parallel_scaling` row and every `--check`
/// re-measurement. Returns `None` for unknown kernels.
fn measure_scaling(kernel_name: &str, c: usize, threads: usize) -> Option<Duration> {
    let kernel = suite::by_name(kernel_name)?;
    let options = HiMapOptions { threads, ..HiMapOptions::default() };
    let run = || {
        let (mapping, _) = run_himap(&kernel, c, &options);
        std::hint::black_box(&mapping);
    };
    for _ in 0..WARMUP {
        run();
    }
    Some(sample(SCALING_SAMPLES, run))
}

/// The portfolio-race workload: kernel × array side, raced with the full
/// backend lineup (himap, bhc, exact) under `FirstFeasible`. HiMap wins on
/// every row; the row's metric is the whole race's wall time — winner
/// latency plus the cooperative-cancellation latency of the losers, which
/// is exactly what a regression in the token plumbing would inflate.
const RACE_CASES: [(&str, usize); 2] = [("mvt", 4), ("gemm", 4)];

/// A 10 s ceiling so a wedged backend fails the bench instead of hanging it.
const RACE_DEADLINE: Duration = Duration::from_secs(10);

/// Warmup-then-median wall time of one portfolio race, plus the (winner,
/// II) pair of the last run — deterministic under the lowest-index
/// tie-break, so any run is as good as any other.
fn measure_race(kernel_name: &str, c: usize) -> Option<(Duration, &'static str, usize)> {
    let kernel = suite::by_name(kernel_name)?;
    let req = MapRequest::new(kernel, CgraSpec::square(c)).with_deadline(RACE_DEADLINE);
    let himap = HiMapBackend::default();
    let bhc = BhcBackend::default().with_block(vec![2; req.kernel.dims()]);
    let exact = ExactBackend::default();
    let backends: [&dyn Backend; 3] = [&himap, &bhc, &exact];
    let mut last: Option<(&'static str, usize)> = None;
    let mut run = || {
        let outcome = race(&backends, &req, RaceMode::FirstFeasible)
            .unwrap_or_else(|e| panic!("race {kernel_name} {c}x{c} found no winner: {e}"));
        last = Some((outcome.winner, outcome.mapping.stats().iib));
    };
    for _ in 0..WARMUP {
        run();
    }
    let t = sample(SCALING_SAMPLES, run);
    let (winner, ii) = last?;
    Some((t, winner, ii))
}

/// `--portfolio` mode: measure the race rows and write `BENCH_pr6.json`.
fn run_portfolio_generate() -> i32 {
    let mut rows = Vec::new();
    for (kernel, c) in RACE_CASES {
        let Some((t, winner, ii)) = measure_race(kernel, c) else {
            eprintln!("unknown race kernel `{kernel}`");
            return 1;
        };
        let ms = t.as_secs_f64() * 1e3;
        eprintln!("  race {kernel} {c}x{c}: {ms:.3} ms, winner {winner} (II {ii})");
        rows.push(format!(
            "    {{\"kernel\": \"{kernel}\", \"cgra\": \"{c}x{c}\", \"median_ms\": {ms:.3}, \
             \"winner\": \"{winner}\", \"ii\": {ii}, \"check\": {}}}",
            ms <= CHECK_BUDGET_MS
        ));
    }
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let json = format!(
        "{{\n\
         \x20 \"bench\": \"pr6_portfolio_race\",\n\
         \x20 \"machine\": {{\"available_parallelism\": {cores}}},\n\
         \x20 \"protocol\": {{\"warmup\": {WARMUP}, \"samples\": {SCALING_SAMPLES}, \
         \"statistic\": \"median\", \"deadline_s\": {}, \"mode\": \"first_feasible\", \
         \"backends\": [\"himap\", \"bhc\", \"exact\"]}},\n\
         \x20 \"portfolio_race\": [\n{}\n  ]\n\
         }}\n",
        RACE_DEADLINE.as_secs(),
        rows.join(",\n"),
    );
    print!("{json}");
    if let Err(e) = std::fs::write("BENCH_pr6.json", &json) {
        eprintln!("could not write BENCH_pr6.json: {e}");
        return 1;
    }
    eprintln!("wrote BENCH_pr6.json ({} race rows)", RACE_CASES.len());
    0
}

/// `--portfolio-check` mode: re-race every gated row of `baseline_path`;
/// fail on a wall-time regression beyond tolerance, a different winner, or
/// a worse II — the race's determinism promise, checked end to end.
fn run_portfolio_check(baseline_path: &str, tolerance: f64) -> i32 {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            return 1;
        }
    };
    let rows = match parse(&text).and_then(|doc| race_rows(&doc)) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("cannot parse baseline {baseline_path}: {e}");
            return 1;
        }
    };
    let gated: Vec<_> = rows.iter().filter(|r| r.check).collect();
    if gated.is_empty() {
        eprintln!("baseline {baseline_path} gates no race rows; nothing to verify");
        return 1;
    }
    println!(
        "portfolio race check: {} gated rows, tolerance {:.0}% + 2 ms",
        gated.len(),
        tolerance * 100.0
    );
    let mut failures = 0usize;
    for row in gated {
        let Some((fresh, winner, ii)) = measure_race(&row.kernel, row.cgra) else {
            eprintln!("unknown kernel `{}` in baseline", row.kernel);
            failures += 1;
            continue;
        };
        let fresh_ms = fresh.as_secs_f64() * 1e3;
        let limit = limit_ms(row.median_ms, tolerance);
        let time_ok = fresh_ms <= limit;
        let winner_ok = winner == row.winner && ii <= row.ii;
        println!(
            "{} race {:>6} {c}x{c} {fresh_ms:>9.3} ms vs baseline {:>9.3} ms \
             (limit {limit:>9.3} ms), winner {winner} II {ii} vs {} II {}",
            if time_ok && winner_ok { "PASS" } else { "FAIL" },
            row.kernel,
            row.median_ms,
            row.winner,
            row.ii,
            c = row.cgra,
        );
        if !(time_ok && winner_ok) {
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("portfolio race check FAILED: {failures} row(s)");
        1
    } else {
        println!("portfolio race check passed");
        0
    }
}

/// `--check` mode: re-measure every gated row of `baseline_path` and exit
/// non-zero on regression.
fn run_check(baseline_path: &str, tolerance: f64) -> i32 {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            return 1;
        }
    };
    let rows = match parse(&text).and_then(|doc| scaling_rows(&doc)) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("cannot parse baseline {baseline_path}: {e}");
            return 1;
        }
    };
    let gated: Vec<&ScalingRow> = rows.iter().filter(|r| r.check).collect();
    if gated.is_empty() {
        eprintln!("baseline {baseline_path} gates no rows (`check: true`); nothing to verify");
        return 1;
    }
    println!(
        "bench regression check: {} gated rows, tolerance {:.0}% + 2 ms",
        gated.len(),
        tolerance * 100.0
    );
    let mut failures = 0usize;
    for row in gated {
        let Some(fresh) = measure_scaling(&row.kernel, row.cgra, row.threads) else {
            eprintln!("unknown kernel `{}` in baseline", row.kernel);
            failures += 1;
            continue;
        };
        let verdict = RowVerdict {
            row: row.clone(),
            fresh_ms: fresh.as_secs_f64() * 1e3,
            limit_ms: limit_ms(row.median_ms, tolerance),
        };
        println!("{verdict}");
        if !verdict.passed() {
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("bench regression check FAILED: {failures} row(s) over tolerance");
        1
    } else {
        println!("bench regression check passed");
        0
    }
}

/// The heterogeneity workload: a multiply-free kernel mapped on the
/// capability-restricted 4x4 (corner multipliers + edge-only memory).
const HET_CASES: [(&str, usize); 1] = [("stencil2d", 4)];

/// Maps `kernel` on the homogeneous and on the heterogeneous `c`x`c`
/// fabric, returning `(hom_ii, het_ii, het_median)`. Both mappings must
/// succeed *and verify* — this row doubles as the continuously-enforced
/// acceptance check that a capability-restricted fabric stays mappable.
fn measure_heterogeneity(kernel_name: &str, c: usize) -> Option<(usize, usize, Duration)> {
    let kernel = suite::by_name(kernel_name)?;
    let options = HiMapOptions::default();
    let hom_spec = CgraSpec::square(c);
    let het_spec = CgraSpec::square(c).with_faults(CapabilityMap::heterogeneous(c, c));
    let map_verified = |spec: &CgraSpec| {
        let mapping = HiMap::new(options.clone())
            .map(&kernel, spec)
            .unwrap_or_else(|e| panic!("{kernel_name} fails to map on {c}x{c}: {e}"));
        let report = himap_verify::verify_mapping(&mapping);
        assert!(
            !report.has_errors(),
            "{kernel_name} on heterogeneous {c}x{c} fails verification:\n{}",
            report.render_pretty()
        );
        mapping.stats().iib
    };
    let hom_ii = map_verified(&hom_spec);
    let mut het_ii = 0;
    let mut run = || het_ii = map_verified(&het_spec);
    for _ in 0..WARMUP {
        run();
    }
    let t = sample(SCALING_SAMPLES, run);
    assert!(
        het_ii >= hom_ii,
        "{kernel_name}: heterogeneous II {het_ii} beats homogeneous II {hom_ii} — \
         removing capabilities cannot enlarge the feasible set"
    );
    Some((hom_ii, het_ii, t))
}

/// Warmup-then-median wall time of mapping gemm on 8x8, single-threaded,
/// with an *explicitly installed empty* `FaultMap` — forcing every mask
/// check through `FaultMap::is_empty` instead of the default construction.
fn measure_empty_faultmap_gemm8() -> Duration {
    let kernel = suite::by_name("gemm").unwrap_or_else(|| unreachable!("gemm is in the suite"));
    let options = HiMapOptions { threads: 1, ..HiMapOptions::default() };
    let spec = CgraSpec::square(8).with_faults(FaultMap::new());
    let run = || {
        let result = HiMap::new(options.clone()).map(&kernel, &spec);
        std::hint::black_box(&result);
    };
    for _ in 0..WARMUP {
        run();
    }
    sample(SCALING_SAMPLES, run)
}

/// `--fault-overhead` mode: the fault model must be free when unused. The
/// gemm 8x8 t=1 median with an empty `FaultMap` installed is held to the
/// committed fault-free baseline row plus 2 % (and the usual 2 ms absolute
/// slack — the row is ~tens of milliseconds, so a bare 2 % would be inside
/// timer noise).
fn run_fault_overhead(baseline_path: &str) -> i32 {
    const FAULT_TOLERANCE: f64 = 0.02;
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            return 1;
        }
    };
    let rows = match parse(&text).and_then(|doc| scaling_rows(&doc)) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("cannot parse baseline {baseline_path}: {e}");
            return 1;
        }
    };
    let Some(row) = rows.iter().find(|r| r.kernel == "gemm" && r.cgra == 8 && r.threads == 1)
    else {
        eprintln!("baseline {baseline_path} has no gemm 8x8 t=1 row");
        return 1;
    };
    let fresh = measure_empty_faultmap_gemm8().as_secs_f64() * 1e3;
    let limit = limit_ms(row.median_ms, FAULT_TOLERANCE);
    println!(
        "fault_overhead: gemm 8x8 t=1 with empty FaultMap {fresh:.3} ms \
         vs fault-free baseline {:.3} ms (limit {limit:.3} ms = +2% + 2 ms)",
        row.median_ms
    );
    if fresh <= limit {
        println!("fault overhead check passed");
        0
    } else {
        eprintln!("fault overhead check FAILED: the empty fault map is not free");
        1
    }
}

/// The mega-fabric scale workload: the tiled path must map *and verify*
/// these kernels on 32x32 and 64x64 without ever materialising the
/// full-fabric MRRG — the index high-water mark is asserted against a
/// tile-scale cap on every sample.
const SCALE_KERNELS: [&str; 2] = ["gemm", "floyd-warshall"];
const SCALE_SIZES: [usize; 2] = [32, 64];

/// Unconditional wall ceiling on every 64x64 row, independent of the
/// committed baseline: a 64x64 map+verify that takes a second has lost
/// the scalability argument even if the baseline drifted with it.
const MEGA_WALL_LIMIT_MS: f64 = 1000.0;

/// One measured mega-scale point.
struct ScaleSample {
    median: Duration,
    index_ms: f64,
    nodes: usize,
    edges: usize,
}

/// Warmup-then-median wall time of tiled map + tiled verify on a `c`x`c`
/// array. Every sample asserts the verifier is clean and that the largest
/// index ever built fits one tile at the achieved II — a full-fabric MRRG
/// leaking into the path fails the bench, not just slows it down.
fn measure_scale(kernel_name: &str, c: usize) -> Option<ScaleSample> {
    let kernel = suite::by_name(kernel_name)?;
    let options = HiMapOptions::default();
    let mut sampled: Option<(f64, usize, usize)> = None;
    let mut run = || {
        let (tiled, _) = run_himap_tiled(&kernel, c, &options);
        let tiled = tiled.unwrap_or_else(|| panic!("{kernel_name} fails to tile-map on {c}x{c}"));
        let report = himap_verify::verify_tiled(&tiled);
        assert!(
            !report.has_errors(),
            "{kernel_name} {c}x{c} tiled mapping fails verification:\n{}",
            report.render_pretty()
        );
        let (tr, tc) = tiled.tile_shape();
        let iib = tiled
            .overrides()
            .values()
            .chain(std::iter::once(tiled.base()))
            .map(|m| m.stats().iib)
            .max()
            .unwrap_or(1)
            .max(1);
        let cap = tr * tc * (9 + tiled.spec().rf_size) * iib;
        let mem = tiled.memory();
        assert!(
            mem.nodes <= cap,
            "{kernel_name} {c}x{c}: index high-water of {} nodes exceeds the \
             tile-scale cap {cap} — the full-fabric MRRG leaked into the tiled path",
            mem.nodes
        );
        let index_ms = tiled.stats().times.index.as_secs_f64() * 1e3;
        sampled = Some((index_ms, mem.nodes, mem.edges));
    };
    for _ in 0..WARMUP {
        run();
    }
    let median = sample(SCALING_SAMPLES, run);
    let (index_ms, nodes, edges) = sampled?;
    Some(ScaleSample { median, index_ms, nodes, edges })
}

/// `--gate <BENCH.json>` mode: the consolidated regression gate. One
/// manifest carries every gated surface — scaling rows, portfolio races,
/// the fault-model overhead row, and the heterogeneity rows — and one
/// verdict table decides the run. Subsumes `--check`,
/// `--portfolio-check` and `--fault-overhead`.
fn run_gate(baseline_path: &str, tolerance: f64) -> i32 {
    const FAULT_TOLERANCE: f64 = 0.02;
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            return 1;
        }
    };
    let doc = match parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot parse baseline {baseline_path}: {e}");
            return 1;
        }
    };
    let parsed = (scaling_rows(&doc), race_rows(&doc), het_rows(&doc), scale_rows(&doc));
    let (scaling, races, hets, scales) = match parsed {
        (Ok(s), Ok(r), Ok(h), Ok(m)) => (s, r, h, m),
        (s, r, h, m) => {
            for e in [s.err(), r.err(), h.err(), m.err()].into_iter().flatten() {
                eprintln!("baseline {baseline_path}: {e}");
            }
            return 1;
        }
    };
    println!(
        "consolidated gate: {} scaling + {} race + {} heterogeneity + {} mega-scale rows, \
         tolerance {:.0}% + 2 ms (fault overhead +2%, 64x64 wall < {MEGA_WALL_LIMIT_MS:.0} ms)",
        scaling.iter().filter(|r| r.check).count(),
        races.iter().filter(|r| r.check).count(),
        hets.iter().filter(|r| r.check).count(),
        scales.iter().filter(|r| r.check).count(),
        tolerance * 100.0
    );
    let mut failures = 0usize;
    // Machine-readable verdict rows, written to BENCH_verdict.json at the
    // end of the run (CI uploads the file as an artifact).
    let mut verdicts: Vec<String> = Vec::new();
    let mut record = |surface: &str, name: String, fresh_ms: f64, limit: f64, pass: bool| {
        verdicts.push(format!(
            "    {{\"surface\": \"{surface}\", \"name\": \"{name}\", \
             \"fresh_ms\": {fresh_ms:.3}, \"limit_ms\": {limit:.3}, \"pass\": {pass}}}"
        ));
    };

    for row in scaling.iter().filter(|r| r.check) {
        let Some(fresh) = measure_scaling(&row.kernel, row.cgra, row.threads) else {
            eprintln!("unknown kernel `{}` in baseline", row.kernel);
            failures += 1;
            continue;
        };
        let verdict = RowVerdict {
            row: row.clone(),
            fresh_ms: fresh.as_secs_f64() * 1e3,
            limit_ms: limit_ms(row.median_ms, tolerance),
        };
        println!("{verdict}");
        record(
            "scaling",
            format!("{} {c}x{c} t={}", row.kernel, row.threads, c = row.cgra),
            verdict.fresh_ms,
            verdict.limit_ms,
            verdict.passed(),
        );
        if !verdict.passed() {
            failures += 1;
        }
    }

    // Race wall time includes the losing backends' cancellation latency,
    // which is noisier than the solo-mapper rows — double the tolerance,
    // preserving the historical 0.25-scaling / 0.5-race split.
    for row in races.iter().filter(|r| r.check) {
        let Some((fresh, winner, ii)) = measure_race(&row.kernel, row.cgra) else {
            eprintln!("unknown kernel `{}` in baseline", row.kernel);
            failures += 1;
            continue;
        };
        let fresh_ms = fresh.as_secs_f64() * 1e3;
        let limit = limit_ms(row.median_ms, tolerance * 2.0);
        let ok = fresh_ms <= limit && winner == row.winner && ii <= row.ii;
        println!(
            "{} race {:>10} {c}x{c} {fresh_ms:>9.3} ms vs baseline {:>9.3} ms \
             (limit {limit:>9.3} ms), winner {winner} II {ii} vs {} II {}",
            if ok { "PASS" } else { "FAIL" },
            row.kernel,
            row.median_ms,
            row.winner,
            row.ii,
            c = row.cgra,
        );
        record("race", format!("{} {c}x{c}", row.kernel, c = row.cgra), fresh_ms, limit, ok);
        if !ok {
            failures += 1;
        }
    }

    // Fault-model overhead: the gemm 8x8 t=1 scaling row doubles as the
    // fault-free baseline the empty-CapabilityMap run is held to.
    match scaling.iter().find(|r| r.kernel == "gemm" && r.cgra == 8 && r.threads == 1) {
        Some(row) => {
            let fresh = measure_empty_faultmap_gemm8().as_secs_f64() * 1e3;
            let limit = limit_ms(row.median_ms, FAULT_TOLERANCE);
            let ok = fresh <= limit;
            println!(
                "{} fault-overhead gemm 8x8 t=1 {fresh:>9.3} ms vs baseline {:>9.3} ms \
                 (limit {limit:>9.3} ms = +2% + 2 ms)",
                if ok { "PASS" } else { "FAIL" },
                row.median_ms,
            );
            record("fault-overhead", "gemm 8x8 t=1".to_string(), fresh, limit, ok);
            if !ok {
                failures += 1;
            }
        }
        None => {
            eprintln!("baseline {baseline_path} has no gemm 8x8 t=1 row for the fault gate");
            failures += 1;
        }
    }

    for row in hets.iter().filter(|r| r.check) {
        let Some((hom_ii, het_ii, fresh)) = measure_heterogeneity(&row.kernel, row.cgra) else {
            eprintln!("unknown kernel `{}` in baseline", row.kernel);
            failures += 1;
            continue;
        };
        let fresh_ms = fresh.as_secs_f64() * 1e3;
        let limit = limit_ms(row.median_ms, tolerance);
        let ok = fresh_ms <= limit && hom_ii <= row.hom_ii && het_ii <= row.het_ii;
        println!(
            "{} het {:>10} {c}x{c} {fresh_ms:>9.3} ms vs baseline {:>9.3} ms \
             (limit {limit:>9.3} ms), II hom {hom_ii}/het {het_ii} vs hom {}/het {}",
            if ok { "PASS" } else { "FAIL" },
            row.kernel,
            row.median_ms,
            row.hom_ii,
            row.het_ii,
            c = row.cgra,
        );
        record(
            "heterogeneity",
            format!("{} {c}x{c}", row.kernel, c = row.cgra),
            fresh_ms,
            limit,
            ok,
        );
        if !ok {
            failures += 1;
        }
    }

    // Mega-fabric scale rows: tolerance vs baseline like every other
    // surface, plus two unconditional promises — the 64x64 wall ceiling,
    // and a non-growing index high-water mark (the "never materialise the
    // full MRRG" claim, held to the committed node count).
    for row in scales.iter().filter(|r| r.check) {
        let Some(s) = measure_scale(&row.kernel, row.cgra) else {
            eprintln!("unknown kernel `{}` in baseline", row.kernel);
            failures += 1;
            continue;
        };
        let fresh_ms = s.median.as_secs_f64() * 1e3;
        let tol_limit = limit_ms(row.median_ms, tolerance);
        let limit = if row.cgra == 64 { tol_limit.min(MEGA_WALL_LIMIT_MS) } else { tol_limit };
        let index_ok = s.nodes <= row.index_nodes;
        let ok = fresh_ms <= limit && index_ok;
        println!(
            "{} scale {:>14} {c}x{c} {fresh_ms:>9.3} ms vs baseline {:>9.3} ms \
             (limit {limit:>9.3} ms), index {} nodes vs baseline {}",
            if ok { "PASS" } else { "FAIL" },
            row.kernel,
            row.median_ms,
            s.nodes,
            row.index_nodes,
            c = row.cgra,
        );
        record("mega-scale", format!("{} {c}x{c}", row.kernel, c = row.cgra), fresh_ms, limit, ok);
        if !ok {
            failures += 1;
        }
    }

    let verdict_json = format!(
        "{{\n\
         \x20 \"gate\": \"consolidated\",\n\
         \x20 \"tolerance\": {tolerance},\n\
         \x20 \"rows_checked\": {},\n\
         \x20 \"failures\": {failures},\n\
         \x20 \"passed\": {},\n\
         \x20 \"rows\": [\n{}\n  ]\n\
         }}\n",
        verdicts.len(),
        failures == 0,
        verdicts.join(",\n"),
    );
    if let Err(e) = std::fs::write("BENCH_verdict.json", &verdict_json) {
        eprintln!("could not write BENCH_verdict.json: {e}");
        return 1;
    }
    eprintln!("wrote BENCH_verdict.json ({} rows)", verdicts.len());

    if failures > 0 {
        eprintln!("consolidated gate FAILED: {failures} row(s)");
        1
    } else {
        println!("consolidated gate passed");
        0
    }
}

/// `--gate-baseline` mode: assembles the consolidated `BENCH.json`
/// manifest the gate reads — splices the committed `parallel_scaling`
/// (BENCH_pr4.json) and `portfolio_race` (BENCH_pr6.json) sections and
/// measures the heterogeneity rows fresh.
fn run_gate_generate() -> i32 {
    let read_doc = |path: &str| -> Result<Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))
    };
    let (pr4, pr6) = match (read_doc("BENCH_pr4.json"), read_doc("BENCH_pr6.json")) {
        (Ok(a), Ok(b)) => (a, b),
        (a, b) => {
            for e in [a.err(), b.err()].into_iter().flatten() {
                eprintln!("{e}");
            }
            return 1;
        }
    };
    let (Some(scaling), Some(races)) = (pr4.get("parallel_scaling"), pr6.get("portfolio_race"))
    else {
        eprintln!("per-PR artifacts are missing their row arrays");
        return 1;
    };

    let mut het = Vec::new();
    for (kernel, c) in HET_CASES {
        let Some((hom_ii, het_ii, t)) = measure_heterogeneity(kernel, c) else {
            eprintln!("unknown heterogeneity kernel `{kernel}`");
            return 1;
        };
        let ms = t.as_secs_f64() * 1e3;
        eprintln!("  het {kernel} {c}x{c}: {ms:.3} ms, II hom {hom_ii} / het {het_ii}");
        het.push(format!(
            "    {{\"kernel\": \"{kernel}\", \"cgra\": \"{c}x{c}\", \"hom_ii\": {hom_ii}, \
             \"het_ii\": {het_ii}, \"median_ms\": {ms:.3}, \"check\": {}}}",
            ms <= CHECK_BUDGET_MS
        ));
    }

    // Mega-fabric scale rows, measured fresh. Generation refuses to commit
    // a baseline that already breaks the unconditional 64x64 wall ceiling.
    let mut scale = Vec::new();
    for kernel in SCALE_KERNELS {
        for c in SCALE_SIZES {
            let Some(s) = measure_scale(kernel, c) else {
                eprintln!("unknown mega-scale kernel `{kernel}`");
                return 1;
            };
            let ms = s.median.as_secs_f64() * 1e3;
            if c == 64 && ms >= MEGA_WALL_LIMIT_MS {
                eprintln!(
                    "MEGA-SCALE PROMISE BROKEN: {kernel} 64x64 {ms:.1} ms >= \
                     {MEGA_WALL_LIMIT_MS:.0} ms — refusing to write a baseline that \
                     fails its own gate"
                );
                return 1;
            }
            let rss = peak_rss_kb().map_or("null".to_string(), |kb| kb.to_string());
            eprintln!(
                "  scale {kernel} {c}x{c}: {ms:.3} ms, index {:.3} ms \
                 ({} nodes / {} edges), peak RSS {rss} kB",
                s.index_ms, s.nodes, s.edges
            );
            scale.push(format!(
                "    {{\"kernel\": \"{kernel}\", \"cgra\": \"{c}x{c}\", \
                 \"median_ms\": {ms:.3}, \"index_ms\": {:.3}, \"index_nodes\": {}, \
                 \"index_edges\": {}, \"peak_rss_kb\": {rss}, \"check\": {}}}",
                s.index_ms,
                s.nodes,
                s.edges,
                ms <= CHECK_BUDGET_MS
            ));
        }
    }

    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let json = format!(
        "{{\n\
         \x20 \"bench\": \"consolidated_gate\",\n\
         \x20 \"machine\": {{\"available_parallelism\": {cores}}},\n\
         \x20 \"protocol\": {{\"warmup\": {WARMUP}, \"samples\": {SCALING_SAMPLES}, \
         \"statistic\": \"median\", \"check_budget_ms\": {CHECK_BUDGET_MS}, \
         \"mega_wall_limit_ms\": {MEGA_WALL_LIMIT_MS}}},\n\
         \x20 \"sources\": {{\"parallel_scaling\": \"BENCH_pr4.json\", \
         \"portfolio_race\": \"BENCH_pr6.json\"}},\n\
         \x20 \"heterogeneous_fabric\": \"corner multipliers + edge-only memory\",\n\
         \x20 \"parallel_scaling\": {},\n\
         \x20 \"portfolio_race\": {},\n\
         \x20 \"heterogeneity\": [\n{}\n  ],\n\
         \x20 \"mega_scale\": [\n{}\n  ]\n\
         }}\n",
        render(scaling),
        render(races),
        het.join(",\n"),
        scale.join(",\n"),
    );
    print!("{json}");
    if let Err(e) = std::fs::write("BENCH.json", &json) {
        eprintln!("could not write BENCH.json: {e}");
        return 1;
    }
    eprintln!("wrote BENCH.json");
    0
}

/// Default mode: measure everything and write `BENCH_pr4.json`.
fn run_generate() -> i32 {
    const MICRO_SAMPLES: usize = 15;
    let spec = CgraSpec::square(8);
    let ii = 4usize;
    let queries = router_queries(8, 8, ii);

    // Route throughput: the full sweep on a clean persistent router.
    let mut dense = Router::new(Mrrg::new(spec.clone(), ii), RouterConfig::default());
    let sweep_dense = |router: &mut Router| {
        for (i, &(src, dst, abs)) in queries.iter().enumerate() {
            let p = router.route_timed(SignalId(i as u32), &[(src, 0)], dst, abs, |_| true);
            std::hint::black_box(p);
        }
    };
    sweep_dense(&mut dense);
    let indexed_time = sample(MICRO_SAMPLES, || sweep_dense(&mut dense));

    let legacy = ReferenceRouter::new(Mrrg::new(spec.clone(), ii), RouterConfig::default());
    let sweep_legacy = |router: &ReferenceRouter| {
        for (i, &(src, dst, abs)) in queries.iter().enumerate() {
            let p = router.route_timed(SignalId(i as u32), &[(src, 0)], dst, abs, |_| true);
            std::hint::black_box(p);
        }
    };
    sweep_legacy(&legacy);
    let hashmap_time = sample(MICRO_SAMPLES, || sweep_legacy(&legacy));

    let per_query = |total: Duration| total.as_secs_f64() / queries.len() as f64;
    let speedup = hashmap_time.as_secs_f64() / indexed_time.as_secs_f64();

    // Cold CSR compilation per (spec, II).
    let index_build_8 = sample(10, || {
        std::hint::black_box(MrrgIndex::new(spec.clone(), ii));
    });
    let spec16 = CgraSpec::square(16);
    let index_build_16 = sample(5, || {
        std::hint::black_box(MrrgIndex::new(spec16.clone(), ii));
    });

    // Thread scaling of the full pipeline. Under production options the
    // scheduler clamps workers to the machine, so on a small box higher
    // thread counts must degrade to sequential speed — never below it.
    let mut scaling = Vec::new();
    let mut summary: Vec<(String, usize, usize, f64)> = Vec::new();
    for kernel_name in SCALING_KERNELS {
        for c in SCALING_SIZES {
            for threads in SCALING_THREADS {
                let Some(t) = measure_scaling(kernel_name, c, threads) else {
                    continue;
                };
                let ms = t.as_secs_f64() * 1e3;
                eprintln!("  {kernel_name} {c}x{c} t={threads}: {ms:.3} ms");
                scaling.push(format!(
                    "    {{\"kernel\": \"{kernel_name}\", \"cgra\": \"{c}x{c}\", \
                     \"threads\": {threads}, \"median_ms\": {ms:.3}, \"check\": {}}}",
                    ms <= CHECK_BUDGET_MS
                ));
                summary.push((kernel_name.to_string(), c, threads, ms));
            }
        }
    }

    // The fault-model overhead row: mapping with an explicitly-installed
    // empty FaultMap must cost the same as the fault-free rows above
    // (gated by `--fault-overhead` against the committed baseline).
    let fault_ms = measure_empty_faultmap_gemm8().as_secs_f64() * 1e3;
    eprintln!("  gemm 8x8 t=1 (empty FaultMap): {fault_ms:.3} ms");

    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let rss = peak_rss_kb().map_or("null".to_string(), |kb| kb.to_string());
    let json = format!(
        "{{\n\
         \x20 \"bench\": \"pr4_parallel_scaling\",\n\
         \x20 \"machine\": {{\"available_parallelism\": {cores}}},\n\
         \x20 \"protocol\": {{\"warmup\": {WARMUP}, \"samples\": {SCALING_SAMPLES}, \
         \"statistic\": \"median\", \"check_budget_ms\": {CHECK_BUDGET_MS}}},\n\
         \x20 \"workload\": {{\"array\": \"8x8\", \"ii\": {ii}, \"route_timed_queries\": {}}},\n\
         \x20 \"route_timed\": {{\n\
         \x20   \"indexed_sweep_ms\": {:.3},\n\
         \x20   \"hashmap_sweep_ms\": {:.3},\n\
         \x20   \"indexed_us_per_route\": {:.3},\n\
         \x20   \"hashmap_us_per_route\": {:.3},\n\
         \x20   \"speedup\": {:.2}\n\
         \x20 }},\n\
         \x20 \"index_build\": {{\"cold_8x8_ii4_ms\": {:.3}, \"cold_16x16_ii4_ms\": {:.3}}},\n\
         \x20 \"parallel_scaling\": [\n{}\n  ],\n\
         \x20 \"fault_overhead\": {{\"kernel\": \"gemm\", \"cgra\": \"8x8\", \"threads\": 1, \
         \"empty_faultmap_median_ms\": {fault_ms:.3}}},\n\
         \x20 \"peak_rss_kb\": {rss}\n\
         }}\n",
        queries.len(),
        indexed_time.as_secs_f64() * 1e3,
        hashmap_time.as_secs_f64() * 1e3,
        per_query(indexed_time) * 1e6,
        per_query(hashmap_time) * 1e6,
        speedup,
        index_build_8.as_secs_f64() * 1e3,
        index_build_16.as_secs_f64() * 1e3,
        scaling.join(",\n"),
    );

    print!("{json}");
    if let Err(e) = std::fs::write("BENCH_pr4.json", &json) {
        eprintln!("could not write BENCH_pr4.json: {e}");
        return 1;
    }
    // The scheduler's core promise, asserted at generation time so a broken
    // baseline can never be committed: more threads never slower (beyond
    // noise) than sequential on the acceptance kernels.
    let mut promise_broken = false;
    for kernel in ["gemm", "bicg"] {
        let find = |threads: usize| {
            summary
                .iter()
                .find(|(k, c, t, _)| k == kernel && *c == 8 && *t == threads)
                .map(|&(_, _, _, ms)| ms)
        };
        if let (Some(seq), Some(par)) = (find(1), find(4)) {
            if par > limit_ms(seq, 0.15) {
                eprintln!("SCALING PROMISE BROKEN: {kernel} 8x8 t=4 {par:.1} ms > t=1 {seq:.1} ms");
                promise_broken = true;
            }
        }
    }
    eprintln!("wrote BENCH_pr4.json ({} scaling rows)", summary.len());
    i32::from(promise_broken)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline: Option<String> = None;
    let mut fault_overhead: Option<String> = None;
    let mut portfolio = false;
    let mut portfolio_check: Option<String> = None;
    let mut gate: Option<String> = None;
    let mut gate_baseline = false;
    let mut tolerance = 0.25f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--gate" => {
                if i + 1 >= args.len() {
                    eprintln!("--gate requires a baseline path");
                    std::process::exit(2);
                }
                gate = Some(args[i + 1].clone());
                i += 2;
            }
            "--gate-baseline" => {
                gate_baseline = true;
                i += 1;
            }
            "--check" => {
                if i + 1 >= args.len() {
                    eprintln!("--check requires a baseline path");
                    std::process::exit(2);
                }
                baseline = Some(args[i + 1].clone());
                i += 2;
            }
            "--fault-overhead" => {
                if i + 1 >= args.len() {
                    eprintln!("--fault-overhead requires a baseline path");
                    std::process::exit(2);
                }
                fault_overhead = Some(args[i + 1].clone());
                i += 2;
            }
            "--portfolio" => {
                portfolio = true;
                i += 1;
            }
            "--portfolio-check" => {
                if i + 1 >= args.len() {
                    eprintln!("--portfolio-check requires a baseline path");
                    std::process::exit(2);
                }
                portfolio_check = Some(args[i + 1].clone());
                i += 2;
            }
            "--tolerance" => {
                let Some(value) = args.get(i + 1).and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("--tolerance requires a number (e.g. 0.25)");
                    std::process::exit(2);
                };
                tolerance = value;
                i += 2;
            }
            other => {
                eprintln!(
                    "unknown argument `{other}`; usage: \
                     bench_summary [--gate FILE] [--gate-baseline] \
                     [--check FILE] [--fault-overhead FILE] \
                     [--portfolio] [--portfolio-check FILE] [--tolerance X]"
                );
                std::process::exit(2);
            }
        }
    }
    let code = if let Some(path) = gate {
        run_gate(&path, tolerance)
    } else if gate_baseline {
        run_gate_generate()
    } else {
        match (baseline, fault_overhead, portfolio_check, portfolio) {
            (Some(path), _, _, _) => run_check(&path, tolerance),
            (None, Some(path), _, _) => run_fault_overhead(&path),
            (None, None, Some(path), _) => run_portfolio_check(&path, tolerance),
            (None, None, None, true) => run_portfolio_generate(),
            (None, None, None, false) => run_generate(),
        }
    };
    std::process::exit(code);
}
