//! Machine-readable benchmark evidence for the dense resource-index
//! refactor: route throughput of the flat-array router vs the HashMap
//! reference, cold index-build time, end-to-end mapping medians, and peak
//! RSS, written to `BENCH_pr3.json`.
//!
//! Run with `cargo run -p himap-bench --release --bin bench_summary`. All
//! workloads are deterministic; only the timings vary run to run, which is
//! why every number reported is a median over repeated samples.

use std::time::{Duration, Instant};

use himap_bench::run_himap;
use himap_cgra::{CgraSpec, Mrrg, MrrgIndex, PeId, RKind, RNode};
use himap_core::HiMapOptions;
use himap_kernels::suite;
use himap_mapper::{ReferenceRouter, Router, RouterConfig, SignalId};

/// The `route_timed` query sweep (same shape as the criterion bench):
/// three source corners to every PE, each at its shortest feasible
/// absolute deadline plus one wait cycle.
fn router_queries(rows: usize, cols: usize, ii: usize) -> Vec<(RNode, RNode, i64)> {
    let mut queries = Vec::new();
    for (sx, sy) in [(0usize, 0usize), (rows / 2, cols / 2), (rows - 1, cols - 1)] {
        let src = RNode::new(PeId::new(sx, sy), 0, RKind::Fu);
        for dx in 0..rows {
            for dy in 0..cols {
                let dist = sx.abs_diff(dx) + sy.abs_diff(dy);
                let abs = dist as i64 + 1;
                let dst = RNode::new(PeId::new(dx, dy), (abs % ii as i64) as u32, RKind::Fu);
                queries.push((src, dst, abs));
            }
        }
    }
    queries
}

fn median(mut samples: Vec<Duration>) -> Duration {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Times `f` over `samples` runs, returning the median duration.
fn sample(samples: usize, mut f: impl FnMut()) -> Duration {
    let mut out = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        f();
        out.push(start.elapsed());
    }
    median(out)
}

/// Peak resident set size in kilobytes from `/proc/self/status` (`VmHWM`).
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn main() {
    const SAMPLES: usize = 15;
    let spec = CgraSpec::square(8);
    let ii = 4usize;
    let queries = router_queries(8, 8, ii);

    // Route throughput: the full sweep on a clean persistent router.
    let mut dense = Router::new(Mrrg::new(spec.clone(), ii), RouterConfig::default());
    // One warm-up sweep so scratch allocation happens outside the timing.
    let sweep_dense = |router: &mut Router| {
        for (i, &(src, dst, abs)) in queries.iter().enumerate() {
            let p = router.route_timed(SignalId(i as u32), &[(src, 0)], dst, abs, |_| true);
            std::hint::black_box(p);
        }
    };
    sweep_dense(&mut dense);
    let indexed_time = sample(SAMPLES, || sweep_dense(&mut dense));

    let legacy = ReferenceRouter::new(Mrrg::new(spec.clone(), ii), RouterConfig::default());
    let sweep_legacy = |router: &ReferenceRouter| {
        for (i, &(src, dst, abs)) in queries.iter().enumerate() {
            let p = router.route_timed(SignalId(i as u32), &[(src, 0)], dst, abs, |_| true);
            std::hint::black_box(p);
        }
    };
    sweep_legacy(&legacy);
    let hashmap_time = sample(SAMPLES, || sweep_legacy(&legacy));

    let per_query = |total: Duration| total.as_secs_f64() / queries.len() as f64;
    let throughput = |total: Duration| queries.len() as f64 / total.as_secs_f64();
    let speedup = hashmap_time.as_secs_f64() / indexed_time.as_secs_f64();

    // Cold CSR compilation per (spec, II).
    let index_build_8 = sample(10, || {
        std::hint::black_box(MrrgIndex::new(spec.clone(), ii));
    });
    let spec16 = CgraSpec::square(16);
    let index_build_16 = sample(5, || {
        std::hint::black_box(MrrgIndex::new(spec16.clone(), ii));
    });

    // End-to-end mapping medians on 8x8 (sequential and 4-thread walk).
    let mut walk = Vec::new();
    for (kernel_name, threads) in [("gemm", 1usize), ("gemm", 4), ("bicg", 1), ("bicg", 4)] {
        let kernel = match suite::by_name(kernel_name) {
            Some(k) => k,
            None => continue,
        };
        let options = HiMapOptions { threads, ..HiMapOptions::default() };
        let t = sample(3, || {
            let (mapping, _) = run_himap(&kernel, 8, &options);
            std::hint::black_box(&mapping);
        });
        walk.push(format!(
            "    {{\"kernel\": \"{kernel_name}\", \"cgra\": \"8x8\", \"threads\": {threads}, \
             \"median_ms\": {:.3}}}",
            t.as_secs_f64() * 1e3
        ));
    }

    let rss = peak_rss_kb().map_or("null".to_string(), |kb| kb.to_string());
    let json = format!(
        "{{\n\
         \x20 \"bench\": \"pr3_dense_resource_index\",\n\
         \x20 \"workload\": {{\"array\": \"8x8\", \"ii\": {ii}, \"route_timed_queries\": {}}},\n\
         \x20 \"route_timed\": {{\n\
         \x20   \"indexed_sweep_ms\": {:.3},\n\
         \x20   \"hashmap_sweep_ms\": {:.3},\n\
         \x20   \"indexed_us_per_route\": {:.3},\n\
         \x20   \"hashmap_us_per_route\": {:.3},\n\
         \x20   \"indexed_routes_per_sec\": {:.0},\n\
         \x20   \"hashmap_routes_per_sec\": {:.0},\n\
         \x20   \"speedup\": {:.2}\n\
         \x20 }},\n\
         \x20 \"index_build\": {{\"cold_8x8_ii4_ms\": {:.3}, \"cold_16x16_ii4_ms\": {:.3}}},\n\
         \x20 \"parallel_walk\": [\n{}\n  ],\n\
         \x20 \"peak_rss_kb\": {rss}\n\
         }}\n",
        queries.len(),
        indexed_time.as_secs_f64() * 1e3,
        hashmap_time.as_secs_f64() * 1e3,
        per_query(indexed_time) * 1e6,
        per_query(hashmap_time) * 1e6,
        throughput(indexed_time),
        throughput(hashmap_time),
        speedup,
        index_build_8.as_secs_f64() * 1e3,
        index_build_16.as_secs_f64() * 1e3,
        walk.join(",\n"),
    );

    print!("{json}");
    if let Err(e) = std::fs::write("BENCH_pr3.json", &json) {
        eprintln!("could not write BENCH_pr3.json: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote BENCH_pr3.json (route_timed speedup: {speedup:.2}x)");
}
