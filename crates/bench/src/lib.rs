//! Benchmark harness regenerating every table and figure of the HiMap paper.
//!
//! Each evaluation artefact has a binary:
//!
//! | Artefact | Binary | What it prints |
//! |----------|--------|----------------|
//! | Table I  | `table1` | kernel categorization by dimensionality × deps |
//! | Table II | `table2` | kernel characteristics + measured unique iterations |
//! | Fig. 7   | `fig7`   | utilization / MOPS / MOPS-per-mW, BHC vs HiMap, per CGRA size |
//! | Fig. 8   | `fig8`   | compilation time vs block size, BHC vs HiMap |
//!
//! Run with `cargo run -p himap-bench --release --bin <name>`. All runs are
//! deterministic (fixed seeds). `EXPERIMENTS.md` records the outputs next to
//! the paper's numbers.

#![forbid(unsafe_code)]

pub mod check;

use std::time::{Duration, Instant};

use himap_baseline::{baseline_block, bhc, BaselineOptions, BhcResult};
use himap_cgra::{CgraSpec, PowerModel};
use himap_core::{HiMap, HiMapOptions, Mapping, PipelineStats, TiledMapping};
use himap_dfg::Dfg;
use himap_kernels::Kernel;

/// One measured point of the HiMap-vs-BHC comparison.
#[derive(Clone, Debug)]
pub struct ComparisonPoint {
    /// Kernel name.
    pub kernel: String,
    /// CGRA side length `c` (array is `c × c`).
    pub cgra: usize,
    /// HiMap utilization (0 if mapping failed).
    pub himap_util: f64,
    /// HiMap compile time.
    pub himap_time: Duration,
    /// Best-of-baselines utilization (0 if both failed).
    pub bhc_util: f64,
    /// Combined baseline compile time.
    pub bhc_time: Duration,
}

impl ComparisonPoint {
    /// Throughput in MOPS at a utilization on a `c × c` CGRA (Fig. 7
    /// middle).
    pub fn mops(c: usize, util: f64) -> f64 {
        PowerModel::cmos40nm().throughput_mops(&CgraSpec::square(c), util)
    }

    /// Power efficiency in MOPS/mW (Fig. 7 bottom). Zero-utilization
    /// mappings burn static power for nothing: efficiency 0.
    pub fn mops_per_mw(c: usize, util: f64) -> f64 {
        if util <= 0.0 {
            return 0.0;
        }
        PowerModel::cmos40nm().efficiency_mops_per_mw(&CgraSpec::square(c), util)
    }
}

/// Runs HiMap on a kernel/CGRA pair, returning the mapping and compile time.
pub fn run_himap(kernel: &Kernel, c: usize, options: &HiMapOptions) -> (Option<Mapping>, Duration) {
    let (mapping, _, time) = run_himap_with_stats(kernel, c, options);
    (mapping, time)
}

/// [`run_himap`], additionally returning the pipeline instrumentation —
/// populated for failed mappings too, so the binaries can print where an
/// unmappable point's candidates died.
pub fn run_himap_with_stats(
    kernel: &Kernel,
    c: usize,
    options: &HiMapOptions,
) -> (Option<Mapping>, PipelineStats, Duration) {
    let start = Instant::now();
    let (result, stats) = HiMap::new(options.clone()).map_with_stats(kernel, &CgraSpec::square(c));
    (result.ok(), stats, start.elapsed())
}

/// Runs HiMap's tiled mega-fabric path on a `c × c` array, returning the
/// tiled mapping and wall time. The full-fabric MRRG is never built on this
/// path; [`TiledMapping::memory`] reports the largest index that was.
pub fn run_himap_tiled(
    kernel: &Kernel,
    c: usize,
    options: &HiMapOptions,
) -> (Option<TiledMapping>, Duration) {
    let start = Instant::now();
    let result = HiMap::new(options.clone()).map_tiled(kernel, &CgraSpec::square(c));
    (result.ok(), start.elapsed())
}

/// Runs the combined baseline over every block size it can scale to (all
/// uniform extents whose DFG stays under the node limit), keeping the best
/// utilization — what a user of those compilers would do by hand. The
/// paper's observation stands regardless of block choice: ops are capped at
/// a few hundred, so utilization collapses on large arrays.
pub fn run_bhc(kernel: &Kernel, c: usize, options: &BaselineOptions) -> (BhcResult, Duration) {
    let max_block = baseline_block(kernel, options);
    let start = Instant::now();
    let mut best: Option<BhcResult> = None;
    let extents: Vec<usize> = (2..=max_block[0]).collect();
    let per_block =
        options.timeout.checked_div(extents.len().max(1) as u32).unwrap_or(options.timeout);
    for extent in extents {
        let block = vec![extent; kernel.dims()];
        let Ok(dfg) = Dfg::build(kernel, &block) else { continue };
        let point_options = BaselineOptions { timeout: per_block, ..options.clone() };
        let result = bhc(&dfg, &CgraSpec::square(c), &point_options);
        let better = match &best {
            None => true,
            Some(b) => result.best_utilization() > b.best_utilization(),
        };
        if better {
            best = Some(result);
        }
    }
    let result = best.unwrap_or(BhcResult {
        spr: Err(himap_baseline::BaselineFailure::NoValidMapping),
        sa: Err(himap_baseline::BaselineFailure::NoValidMapping),
    });
    (result, start.elapsed())
}

/// Measures one HiMap-vs-BHC comparison point (one bar group of Fig. 7).
pub fn compare(
    kernel: &Kernel,
    c: usize,
    himap_options: &HiMapOptions,
    baseline_options: &BaselineOptions,
) -> ComparisonPoint {
    let (mapping, himap_time) = run_himap(kernel, c, himap_options);
    let (bhc_result, bhc_time) = run_bhc(kernel, c, baseline_options);
    ComparisonPoint {
        kernel: kernel.name().to_string(),
        cgra: c,
        himap_util: mapping.map_or(0.0, |m| m.utilization()),
        himap_time,
        bhc_util: bhc_result.best_utilization(),
        bhc_time,
    }
}

/// Renders rows as a markdown table with right-aligned numeric columns.
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let padded: Vec<String> =
            cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}", w = w)).collect();
        format!("| {} |\n", padded.join(" | "))
    };
    out.push_str(&fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>(), &widths));
    out.push_str(&format!(
        "|{}|\n",
        widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("|")
    ));
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// The CGRA sizes of Fig. 7.
pub const FIG7_SIZES: [usize; 4] = [4, 8, 16, 32];

/// Baseline options used by the figure generators: the paper's 3-day budget
/// scaled down to keep a full figure run in minutes.
pub fn figure_baseline_options() -> BaselineOptions {
    BaselineOptions { timeout: Duration::from_secs(20), ..BaselineOptions::default() }
}

#[allow(clippy::unwrap_used, clippy::expect_used)]
#[cfg(test)]
mod tests {
    use super::*;
    use himap_kernels::suite;

    #[test]
    fn compare_produces_sane_point() {
        let point =
            compare(&suite::gemm(), 4, &HiMapOptions::default(), &figure_baseline_options());
        assert_eq!(point.kernel, "gemm");
        assert!(point.himap_util > 0.0);
        assert!(point.himap_util >= point.bhc_util, "HiMap must dominate");
    }

    #[test]
    fn markdown_table_shape() {
        let t = markdown_table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["33".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("|-"));
    }

    #[test]
    fn power_metrics_monotone_in_utilization() {
        let low = ComparisonPoint::mops_per_mw(8, 0.1);
        let high = ComparisonPoint::mops_per_mw(8, 1.0);
        assert!(high > low);
        assert_eq!(ComparisonPoint::mops_per_mw(8, 0.0), 0.0);
        assert!(ComparisonPoint::mops(8, 1.0) > ComparisonPoint::mops(4, 1.0));
    }
}
