//! Benchmark-regression checking against a committed baseline.
//!
//! `bench_summary --check BENCH_pr4.json` re-runs the fast scaling rows and
//! fails CI when any regresses beyond tolerance. The container has no JSON
//! dependency, so this module carries a minimal recursive-descent parser
//! covering exactly the JSON subset our bench binaries emit (objects,
//! arrays, strings, f64 numbers, booleans, null).
//!
//! The comparison rule is deliberately forgiving of machine noise: a row
//! fails only when its fresh median exceeds
//! `baseline * (1 + tolerance) + 2 ms`. The relative term absorbs
//! steady-state jitter (25 % default — the observed run-to-run spread of
//! sub-100 ms mapping runs on a loaded CI box), the absolute term keeps
//! near-zero rows from failing on scheduler hiccups.

use std::fmt;

/// Extra absolute slack added on top of the relative tolerance, so rows
/// measuring a few milliseconds don't fail on a single timer-granularity or
/// scheduler blip.
pub const ABSOLUTE_SLACK_MS: f64 = 2.0;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always held as `f64`).
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a byte-offset-tagged message on malformed input or trailing
/// garbage.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = match self.peek() {
                        Some(b'"') => '"',
                        Some(b'\\') => '\\',
                        Some(b'/') => '/',
                        Some(b'n') => '\n',
                        Some(b't') => '\t',
                        Some(b'r') => '\r',
                        _ => return Err(format!("unsupported escape at byte {}", self.pos)),
                    };
                    out.push(escaped);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 is copied through verbatim.
                    let start = self.pos;
                    while self.bytes.get(self.pos).is_some_and(|&b| b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| format!("invalid UTF-8 at byte {start}"))?,
                    );
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|&b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }
}

/// One `parallel_scaling` row of a bench baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct ScalingRow {
    /// Kernel name (`suite::by_name` key).
    pub kernel: String,
    /// CGRA side length (`8` for an 8x8 array).
    pub cgra: usize,
    /// Requested worker threads.
    pub threads: usize,
    /// Median wall time in milliseconds.
    pub median_ms: f64,
    /// Whether `--check` re-measures this row (only fast rows are gated).
    pub check: bool,
}

/// Extracts the `parallel_scaling` rows from a parsed baseline document.
///
/// # Errors
///
/// Returns a message naming the missing or mistyped field.
pub fn scaling_rows(doc: &Json) -> Result<Vec<ScalingRow>, String> {
    let rows = doc
        .get("parallel_scaling")
        .and_then(Json::as_array)
        .ok_or("baseline has no `parallel_scaling` array")?;
    rows.iter()
        .enumerate()
        .map(|(i, row)| {
            let field = |key: &str| row.get(key).ok_or_else(|| format!("row {i} missing `{key}`"));
            let cgra = field("cgra")?
                .as_str()
                .and_then(|s| s.split('x').next())
                .and_then(|s| s.parse::<usize>().ok())
                .ok_or_else(|| format!("row {i}: `cgra` is not like \"8x8\""))?;
            Ok(ScalingRow {
                kernel: field("kernel")?
                    .as_str()
                    .ok_or_else(|| format!("row {i}: `kernel` is not a string"))?
                    .to_string(),
                cgra,
                threads: field("threads")?
                    .as_f64()
                    .ok_or_else(|| format!("row {i}: `threads` is not a number"))?
                    as usize,
                median_ms: field("median_ms")?
                    .as_f64()
                    .ok_or_else(|| format!("row {i}: `median_ms` is not a number"))?,
                check: field("check")?
                    .as_bool()
                    .ok_or_else(|| format!("row {i}: `check` is not a boolean"))?,
            })
        })
        .collect()
}

/// One `portfolio_race` row of a bench baseline (`BENCH_pr6.json`).
#[derive(Clone, Debug, PartialEq)]
pub struct RaceRow {
    /// Kernel name (`suite::by_name` key).
    pub kernel: String,
    /// CGRA side length.
    pub cgra: usize,
    /// Median race wall time in milliseconds.
    pub median_ms: f64,
    /// The deterministic winner's backend name.
    pub winner: String,
    /// The winning mapping's II.
    pub ii: usize,
    /// Whether `--portfolio-check` re-measures this row.
    pub check: bool,
}

/// Extracts the `portfolio_race` rows from a parsed baseline document.
///
/// # Errors
///
/// Returns a message naming the missing or mistyped field.
pub fn race_rows(doc: &Json) -> Result<Vec<RaceRow>, String> {
    let rows = doc
        .get("portfolio_race")
        .and_then(Json::as_array)
        .ok_or("baseline has no `portfolio_race` array")?;
    rows.iter()
        .enumerate()
        .map(|(i, row)| {
            let field = |key: &str| row.get(key).ok_or_else(|| format!("row {i} missing `{key}`"));
            let cgra = field("cgra")?
                .as_str()
                .and_then(|s| s.split('x').next())
                .and_then(|s| s.parse::<usize>().ok())
                .ok_or_else(|| format!("row {i}: `cgra` is not like \"4x4\""))?;
            Ok(RaceRow {
                kernel: field("kernel")?
                    .as_str()
                    .ok_or_else(|| format!("row {i}: `kernel` is not a string"))?
                    .to_string(),
                cgra,
                median_ms: field("median_ms")?
                    .as_f64()
                    .ok_or_else(|| format!("row {i}: `median_ms` is not a number"))?,
                winner: field("winner")?
                    .as_str()
                    .ok_or_else(|| format!("row {i}: `winner` is not a string"))?
                    .to_string(),
                ii: field("ii")?.as_f64().ok_or_else(|| format!("row {i}: `ii` is not a number"))?
                    as usize,
                check: field("check")?
                    .as_bool()
                    .ok_or_else(|| format!("row {i}: `check` is not a boolean"))?,
            })
        })
        .collect()
}

/// One `heterogeneity` row of the consolidated `BENCH.json` manifest: the
/// same kernel mapped on the homogeneous and on the capability-restricted
/// (corner multipliers + edge-only memory) fabric of one array size.
#[derive(Clone, Debug, PartialEq)]
pub struct HetRow {
    /// Kernel name (`suite::by_name` key).
    pub kernel: String,
    /// CGRA side length.
    pub cgra: usize,
    /// II achieved on the homogeneous fabric.
    pub hom_ii: usize,
    /// II achieved on the heterogeneous fabric (≥ `hom_ii` by construction).
    pub het_ii: usize,
    /// Median wall time of the heterogeneous mapping in milliseconds.
    pub median_ms: f64,
    /// Whether `--gate` re-measures this row.
    pub check: bool,
}

/// Extracts the `heterogeneity` rows from a parsed baseline document.
///
/// # Errors
///
/// Returns a message naming the missing or mistyped field.
pub fn het_rows(doc: &Json) -> Result<Vec<HetRow>, String> {
    let rows = doc
        .get("heterogeneity")
        .and_then(Json::as_array)
        .ok_or("baseline has no `heterogeneity` array")?;
    rows.iter()
        .enumerate()
        .map(|(i, row)| {
            let field = |key: &str| row.get(key).ok_or_else(|| format!("row {i} missing `{key}`"));
            let num = |key: &str| {
                field(key)?.as_f64().ok_or_else(|| format!("row {i}: `{key}` is not a number"))
            };
            let cgra = field("cgra")?
                .as_str()
                .and_then(|s| s.split('x').next())
                .and_then(|s| s.parse::<usize>().ok())
                .ok_or_else(|| format!("row {i}: `cgra` is not like \"4x4\""))?;
            Ok(HetRow {
                kernel: field("kernel")?
                    .as_str()
                    .ok_or_else(|| format!("row {i}: `kernel` is not a string"))?
                    .to_string(),
                cgra,
                hom_ii: num("hom_ii")? as usize,
                het_ii: num("het_ii")? as usize,
                median_ms: num("median_ms")?,
                check: field("check")?
                    .as_bool()
                    .ok_or_else(|| format!("row {i}: `check` is not a boolean"))?,
            })
        })
        .collect()
}

/// One `mega_scale` row of the consolidated `BENCH.json` manifest: a
/// kernel mapped *and verified* through the tiled path on a mega fabric
/// (32×32, 64×64), with the largest materialised index recorded so the
/// gate can prove the full-fabric MRRG was never built.
#[derive(Clone, Debug, PartialEq)]
pub struct ScaleRow {
    /// Kernel name (`suite::by_name` key).
    pub kernel: String,
    /// CGRA side length (`64` for a 64x64 array).
    pub cgra: usize,
    /// Median wall time of map-plus-verify in milliseconds.
    pub median_ms: f64,
    /// Dense index build time charged to the run, in milliseconds.
    pub index_ms: f64,
    /// Node count of the largest MRRG index the run materialised.
    pub index_nodes: usize,
    /// Edge count of the largest MRRG index the run materialised.
    pub index_edges: usize,
    /// Process peak RSS after the row, in kilobytes (0 when unavailable).
    pub peak_rss_kb: f64,
    /// Whether `--gate` re-measures this row.
    pub check: bool,
}

/// Extracts the `mega_scale` rows from a parsed baseline document.
///
/// # Errors
///
/// Returns a message naming the missing or mistyped field.
pub fn scale_rows(doc: &Json) -> Result<Vec<ScaleRow>, String> {
    let rows = doc
        .get("mega_scale")
        .and_then(Json::as_array)
        .ok_or("baseline has no `mega_scale` array")?;
    rows.iter()
        .enumerate()
        .map(|(i, row)| {
            let field = |key: &str| row.get(key).ok_or_else(|| format!("row {i} missing `{key}`"));
            let num = |key: &str| {
                field(key)?.as_f64().ok_or_else(|| format!("row {i}: `{key}` is not a number"))
            };
            let cgra = field("cgra")?
                .as_str()
                .and_then(|s| s.split('x').next())
                .and_then(|s| s.parse::<usize>().ok())
                .ok_or_else(|| format!("row {i}: `cgra` is not like \"64x64\""))?;
            Ok(ScaleRow {
                kernel: field("kernel")?
                    .as_str()
                    .ok_or_else(|| format!("row {i}: `kernel` is not a string"))?
                    .to_string(),
                cgra,
                median_ms: num("median_ms")?,
                index_ms: num("index_ms")?,
                index_nodes: num("index_nodes")? as usize,
                index_edges: num("index_edges")? as usize,
                peak_rss_kb: row.get("peak_rss_kb").and_then(Json::as_f64).unwrap_or(0.0),
                check: field("check")?
                    .as_bool()
                    .ok_or_else(|| format!("row {i}: `check` is not a boolean"))?,
            })
        })
        .collect()
}

/// The pass/fail threshold for a fresh measurement against a baseline
/// median: `baseline * (1 + tolerance) + 2 ms`.
pub fn limit_ms(baseline_ms: f64, tolerance: f64) -> f64 {
    baseline_ms * (1.0 + tolerance) + ABSOLUTE_SLACK_MS
}

/// Renders a [`Json`] value back to source text — members in parse order,
/// numbers in shortest-exact form — so the `--gate` baseline generator can
/// splice sections of the per-PR artifacts into one manifest.
pub fn render(json: &Json) -> String {
    match json {
        Json::Null => "null".to_string(),
        Json::Bool(b) => b.to_string(),
        Json::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                format!("{}", *n as i64)
            } else {
                format!("{n}")
            }
        }
        Json::Str(s) => {
            let escaped = s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n");
            format!("\"{escaped}\"")
        }
        Json::Arr(items) => {
            let body: Vec<String> = items.iter().map(render).collect();
            format!("[{}]", body.join(", "))
        }
        Json::Obj(members) => {
            let body: Vec<String> =
                members.iter().map(|(k, v)| format!("\"{k}\": {}", render(v))).collect();
            format!("{{{}}}", body.join(", "))
        }
    }
}

/// The verdict of re-measuring one checked row.
#[derive(Clone, Debug)]
pub struct RowVerdict {
    /// The baseline row.
    pub row: ScalingRow,
    /// The fresh median in milliseconds.
    pub fresh_ms: f64,
    /// The limit the fresh median was held to.
    pub limit_ms: f64,
}

impl RowVerdict {
    /// Whether the fresh measurement is within tolerance.
    pub fn passed(&self) -> bool {
        self.fresh_ms <= self.limit_ms
    }
}

impl fmt::Display for RowVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {:>14} {c}x{c} t={} {:>9.3} ms vs baseline {:>9.3} ms (limit {:>9.3} ms)",
            if self.passed() { "PASS" } else { "FAIL" },
            self.row.kernel,
            self.row.threads,
            self.fresh_ms,
            self.row.median_ms,
            self.limit_ms,
            c = self.row.cgra,
        )
    }
}

#[allow(clippy::unwrap_used, clippy::expect_used)]
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let doc = parse(r#"{"a": [1, -2.5, 3e2], "b": {"c": true, "d": null}, "e": "x\ny"}"#)
            .expect("parses");
        assert_eq!(doc.get("a").unwrap().as_array().unwrap()[1].as_f64(), Some(-2.5));
        assert_eq!(doc.get("a").unwrap().as_array().unwrap()[2].as_f64(), Some(300.0));
        assert_eq!(doc.get("b").unwrap().get("c").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(doc.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn parses_empty_containers_and_whitespace() {
        assert_eq!(parse(" { } ").unwrap(), Json::Obj(vec![]));
        assert_eq!(parse("[\n]").unwrap(), Json::Arr(vec![]));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\": 1} x").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn round_trips_a_real_baseline_shape() {
        let text = r#"{
          "bench": "pr4_parallel_scaling",
          "parallel_scaling": [
            {"kernel": "gemm", "cgra": "8x8", "threads": 4, "median_ms": 18.5, "check": true},
            {"kernel": "floyd-warshall", "cgra": "4x4", "threads": 1, "median_ms": 900.0,
             "check": false}
          ]
        }"#;
        let rows = scaling_rows(&parse(text).expect("parses")).expect("rows");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].kernel, "gemm");
        assert_eq!(rows[0].cgra, 8);
        assert_eq!(rows[0].threads, 4);
        assert!(rows[0].check);
        assert!(!rows[1].check);
        assert_eq!(rows[1].cgra, 4);
    }

    #[test]
    fn round_trips_a_portfolio_baseline_shape() {
        let text = r#"{
          "bench": "pr6_portfolio_race",
          "portfolio_race": [
            {"kernel": "mvt", "cgra": "4x4", "median_ms": 12.0, "winner": "himap",
             "ii": 2, "check": true}
          ]
        }"#;
        let rows = race_rows(&parse(text).expect("parses")).expect("rows");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].kernel, "mvt");
        assert_eq!(rows[0].winner, "himap");
        assert_eq!(rows[0].ii, 2);
        assert!(rows[0].check);
    }

    #[test]
    fn round_trips_a_heterogeneity_baseline_shape() {
        let text = r#"{
          "heterogeneity": [
            {"kernel": "stencil2d", "cgra": "4x4", "hom_ii": 4, "het_ii": 16,
             "median_ms": 45.0, "check": true}
          ]
        }"#;
        let rows = het_rows(&parse(text).expect("parses")).expect("rows");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].kernel, "stencil2d");
        assert_eq!(rows[0].cgra, 4);
        assert_eq!(rows[0].hom_ii, 4);
        assert_eq!(rows[0].het_ii, 16);
        assert!(rows[0].check);
    }

    #[test]
    fn round_trips_a_mega_scale_baseline_shape() {
        let text = r#"{
          "mega_scale": [
            {"kernel": "gemm", "cgra": "64x64", "median_ms": 12.0, "index_ms": 1.5,
             "index_nodes": 6400, "index_edges": 27456, "peak_rss_kb": 120000, "check": true},
            {"kernel": "floyd-warshall", "cgra": "32x32", "median_ms": 30.0, "index_ms": 2.0,
             "index_nodes": 9600, "index_edges": 41184, "peak_rss_kb": null, "check": false}
          ]
        }"#;
        let rows = scale_rows(&parse(text).expect("parses")).expect("rows");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].kernel, "gemm");
        assert_eq!(rows[0].cgra, 64);
        assert_eq!(rows[0].index_nodes, 6400);
        assert!(rows[0].check);
        assert_eq!(rows[1].peak_rss_kb, 0.0, "null RSS degrades to zero");
        assert!(!rows[1].check);
    }

    #[test]
    fn render_round_trips_through_parse() {
        let text = r#"{"a": [1, -2.5, true, null], "b": {"c": "x\ny"}, "d": 12.375}"#;
        let doc = parse(text).expect("parses");
        assert_eq!(parse(&render(&doc)).expect("re-parses"), doc);
        // Integral numbers render without a fractional tail.
        assert_eq!(render(&Json::Num(3.0)), "3");
    }

    #[test]
    fn missing_fields_are_named() {
        let text = r#"{"parallel_scaling": [{"kernel": "gemm"}]}"#;
        let err = scaling_rows(&parse(text).expect("parses")).unwrap_err();
        assert!(err.contains("cgra"), "unhelpful error: {err}");
    }

    #[test]
    fn limit_combines_relative_and_absolute_slack() {
        assert!((limit_ms(100.0, 0.25) - 127.0).abs() < 1e-9);
        // Near-zero baselines still get the absolute floor.
        assert!(limit_ms(0.1, 0.25) > 2.0);
        let verdict = RowVerdict {
            row: ScalingRow {
                kernel: "gemm".into(),
                cgra: 8,
                threads: 4,
                median_ms: 100.0,
                check: true,
            },
            fresh_ms: 126.0,
            limit_ms: limit_ms(100.0, 0.25),
        };
        assert!(verdict.passed());
        assert!(verdict.to_string().contains("PASS"));
    }
}
