//! Prints the mega-fabric scale trend table of EXPERIMENTS.md: tiled
//! map + verify wall time, index high-water mark and cumulative peak RSS
//! for gemm and floyd-warshall from 4x4 up to 64x64.
//!
//! Run with `cargo run -p himap-bench --release --example scale_trend`.

#![forbid(unsafe_code)]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::time::Instant;

use himap_bench::run_himap_tiled;
use himap_core::HiMapOptions;
use himap_kernels::suite;

fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn main() {
    let options = HiMapOptions::default();
    println!("| kernel | fabric | wall (ms) | index nodes | index edges | peak RSS (kB) |");
    println!("|---|---|---|---|---|---|");
    for kernel_name in ["gemm", "floyd-warshall"] {
        let kernel = suite::by_name(kernel_name).expect("suite kernel");
        for c in [4usize, 8, 16, 32, 64] {
            // Median of 3 after one warmup: the same protocol shape as the
            // bench gate, scaled down — this is a table generator, not a
            // regression gate.
            let mut walls = Vec::new();
            let mut last = None;
            for i in 0..4 {
                let start = Instant::now();
                let (tiled, _) = run_himap_tiled(&kernel, c, &options);
                let tiled =
                    tiled.unwrap_or_else(|| panic!("{kernel_name} fails to tile on {c}x{c}"));
                let report = himap_verify::verify_tiled(&tiled);
                assert!(!report.has_errors(), "{kernel_name} {c}x{c} fails verification");
                if i > 0 {
                    walls.push(start.elapsed());
                }
                last = Some(tiled);
            }
            walls.sort_unstable();
            let tiled = last.expect("at least one run");
            let mem = tiled.memory();
            println!(
                "| {kernel_name} | {c}x{c} | {:.1} | {} | {} | {} |",
                walls[walls.len() / 2].as_secs_f64() * 1e3,
                mem.nodes,
                mem.edges,
                peak_rss_kb().map_or_else(|| "?".into(), |kb| kb.to_string()),
            );
        }
    }
}
