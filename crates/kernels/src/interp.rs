//! Reference interpreter for affine kernels.
//!
//! Executes a kernel over a block of its iteration space with exact
//! (wrapping) integer semantics. The cycle-accurate CGRA simulator in
//! `himap-sim` validates mappings by comparing its results against this
//! interpreter on the same seeded inputs.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::ir::{ArrayId, Expr, Kernel};

/// Sparse storage for all array elements touched by a kernel execution.
///
/// Elements that are read before ever being written ("live-ins") receive a
/// deterministic pseudo-random value derived from `(seed, array, element)`,
/// so two independent executions (interpreter and simulator) agree on inputs
/// without exchanging data.
///
/// # Example
///
/// ```
/// use himap_kernels::{suite, ArrayStore};
///
/// let gemm = suite::gemm();
/// let mut store = ArrayStore::new(42);
/// himap_kernels::interpret(&gemm, &[2, 2, 2], &mut store)?;
/// # Ok::<(), himap_kernels::InterpError>(())
/// ```
#[derive(Clone, Debug)]
pub struct ArrayStore {
    seed: u64,
    values: HashMap<(ArrayId, Vec<i64>), i64>,
}

impl ArrayStore {
    /// Creates a store whose live-in values are derived from `seed`.
    pub fn new(seed: u64) -> Self {
        ArrayStore { seed, values: HashMap::new() }
    }

    /// The deterministic live-in value of an element (before any write).
    ///
    /// Values are kept small (−128..=127) so products along deep reduction
    /// chains stay far from wrapping, which keeps test failures readable.
    pub fn live_in(&self, array: ArrayId, element: &[i64]) -> i64 {
        let mut h = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        h = mix(h ^ (array.index() as u64).wrapping_mul(0xff51_afd7_ed55_8ccd));
        for &e in element {
            h = mix(h ^ (e as u64));
        }
        (h % 256) as i64 - 128
    }

    /// Reads an element, falling back to its live-in value.
    pub fn read(&self, array: ArrayId, element: &[i64]) -> i64 {
        self.values
            .get(&(array, element.to_vec()))
            .copied()
            .unwrap_or_else(|| self.live_in(array, element))
    }

    /// Writes an element.
    pub fn write(&mut self, array: ArrayId, element: Vec<i64>, value: i64) {
        self.values.insert((array, element), value);
    }

    /// `true` if the element has been written.
    pub fn is_written(&self, array: ArrayId, element: &[i64]) -> bool {
        self.values.contains_key(&(array, element.to_vec()))
    }

    /// Number of written elements.
    pub fn written_len(&self) -> usize {
        self.values.len()
    }

    /// Iterates over all written elements as `((array, element), value)`.
    pub fn iter(&self) -> impl Iterator<Item = (&(ArrayId, Vec<i64>), &i64)> {
        self.values.iter()
    }
}

fn mix(mut x: u64) -> u64 {
    // splitmix64 finalizer.
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Error produced by [`interpret`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InterpError {
    /// The block size arity does not match the kernel's loop depth.
    BlockArity {
        /// Loop depth of the kernel.
        expected: usize,
        /// Arity of the supplied block.
        found: usize,
    },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::BlockArity { expected, found } => {
                write!(f, "block has {found} extents but kernel has {expected} loops")
            }
        }
    }
}

impl Error for InterpError {}

/// Executes `kernel` over the block `(b1, …, bl)`, mutating `store`.
///
/// Iterations run in lexicographic order (outermost loop slowest), statements
/// in program order — the sequential semantics every legal mapping must
/// preserve.
///
/// # Errors
///
/// Returns [`InterpError::BlockArity`] if `block.len() != kernel.dims()`.
pub fn interpret(
    kernel: &Kernel,
    block: &[usize],
    store: &mut ArrayStore,
) -> Result<(), InterpError> {
    if block.len() != kernel.dims() {
        return Err(InterpError::BlockArity { expected: kernel.dims(), found: block.len() });
    }
    for iter in kernel.iteration_space(block) {
        for stmt in kernel.stmts() {
            let value = eval(&stmt.value, &iter, store);
            let elem = stmt.target.element_at(&iter);
            store.write(stmt.target.array, elem, value);
        }
    }
    Ok(())
}

fn eval(expr: &Expr, iter: &[i64], store: &ArrayStore) -> i64 {
    match expr {
        Expr::Const(c) => *c,
        Expr::Read(r) => store.read(r.array, &r.element_at(iter)),
        Expr::Binary(op, l, r) => op.apply(eval(l, iter, store), eval(r, iter, store)),
    }
}

#[allow(clippy::unwrap_used, clippy::expect_used)]
#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;

    #[test]
    fn gemm_matches_direct_computation() {
        let gemm = suite::gemm();
        let (b1, b2, b3) = (3usize, 3usize, 3usize);
        let mut store = ArrayStore::new(7);
        // Capture live-in values before execution.
        let c_id = gemm.arrays().iter().position(|a| a.name == "C").unwrap();
        let a_id = gemm.arrays().iter().position(|a| a.name == "A").unwrap();
        let b_id = gemm.arrays().iter().position(|a| a.name == "B").unwrap();
        let (c_id, a_id, b_id) = (
            crate::ir::ArrayId(c_id as u32),
            crate::ir::ArrayId(a_id as u32),
            crate::ir::ArrayId(b_id as u32),
        );
        let mut expected = vec![vec![0i64; b2]; b1];
        for (i, row) in expected.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                let mut acc = store.live_in(c_id, &[i as i64, j as i64]);
                for k in 0..b3 {
                    acc += store.live_in(a_id, &[i as i64, k as i64])
                        * store.live_in(b_id, &[k as i64, j as i64]);
                }
                *cell = acc;
            }
        }
        interpret(&gemm, &[b1, b2, b3], &mut store).unwrap();
        for (i, row) in expected.iter().enumerate() {
            for (j, &want) in row.iter().enumerate() {
                assert_eq!(store.read(c_id, &[i as i64, j as i64]), want, "C[{i}][{j}]");
            }
        }
    }

    #[test]
    fn floyd_warshall_relaxes_paths() {
        let fw = suite::floyd_warshall();
        let n = 4usize;
        let d_id = crate::ir::ArrayId(0);
        let mut store = ArrayStore::new(3);
        // Seed a concrete distance matrix.
        let inf = 1_000_000i64;
        let mut d = vec![vec![inf; n]; n];
        for (i, row) in d.iter_mut().enumerate() {
            row[i] = 0;
        }
        d[0][1] = 5;
        d[1][2] = 4;
        d[2][3] = 1;
        d[0][3] = 100;
        // Seed version 0 of the versioned (Jacobi-form) kernel.
        for (i, row) in d.iter().enumerate() {
            for (j, &dist) in row.iter().enumerate() {
                store.write(d_id, vec![0, i as i64, j as i64], dist);
            }
        }
        interpret(&fw, &[n, n, n], &mut store).unwrap();
        // Results live in version n. 0 -> 1 -> 2 -> 3 = 10 beats the direct
        // edge of 100.
        let v = n as i64;
        assert_eq!(store.read(d_id, &[v, 0, 3]), 10);
        assert_eq!(store.read(d_id, &[v, 0, 2]), 9);
        assert_eq!(store.read(d_id, &[v, 1, 3]), 5);
    }

    #[test]
    fn live_ins_are_deterministic_and_seed_sensitive() {
        let s1 = ArrayStore::new(1);
        let s1b = ArrayStore::new(1);
        let s2 = ArrayStore::new(2);
        let a = crate::ir::ArrayId(0);
        assert_eq!(s1.live_in(a, &[3, 4]), s1b.live_in(a, &[3, 4]));
        // Different seeds should (essentially always) give different values
        // somewhere in a small window.
        let differs = (0..16).any(|i| s1.live_in(a, &[i]) != s2.live_in(a, &[i]));
        assert!(differs);
        // Bounded range.
        for i in 0..64 {
            let v = s1.live_in(a, &[i]);
            assert!((-128..=127).contains(&v));
        }
    }

    #[test]
    fn block_arity_checked() {
        let gemm = suite::gemm();
        let mut store = ArrayStore::new(0);
        let err = interpret(&gemm, &[2, 2], &mut store).unwrap_err();
        assert_eq!(err, InterpError::BlockArity { expected: 3, found: 2 });
    }

    #[test]
    fn reads_fall_back_to_live_in_until_written() {
        let mut store = ArrayStore::new(9);
        let a = crate::ir::ArrayId(0);
        let before = store.read(a, &[0]);
        assert_eq!(before, store.live_in(a, &[0]));
        assert!(!store.is_written(a, &[0]));
        store.write(a, vec![0], 42);
        assert_eq!(store.read(a, &[0]), 42);
        assert!(store.is_written(a, &[0]));
        assert_eq!(store.written_len(), 1);
    }
}
