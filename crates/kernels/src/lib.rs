//! Affine loop-nest kernel IR, benchmark suite, dependence analysis and a
//! reference interpreter.
//!
//! The HiMap paper compiles C kernels through LLVM to obtain data-flow graphs.
//! This crate is the equivalent front-end substrate: kernels are expressed in
//! a small affine loop-nest IR ([`Kernel`]) from which the `himap-dfg` crate
//! derives the unrolled DFG, the iteration-space dependency graph (ISDG) and
//! per-iteration data-flow graphs (IDFG) by exact dataflow analysis.
//!
//! The eight multi-dimensional kernels evaluated in the paper (Table II) are
//! provided by [`suite`], together with the categorized kernel inventory of
//! Table I.
//!
//! # Example
//!
//! ```
//! use himap_kernels::suite;
//!
//! let bicg = suite::bicg();
//! assert_eq!(bicg.dims(), 2);
//! assert_eq!(bicg.compute_ops_per_iteration(), 4);
//! ```

#![forbid(unsafe_code)]

mod deps;
mod interp;
mod ir;
pub mod lint;
mod parse;
pub mod suite;

pub use deps::{classify, DepAnalysis, DepKind, Dependence, KernelCategory};
pub use interp::{interpret, ArrayStore, InterpError};
pub use ir::{
    AffineExpr, ArrayDecl, ArrayId, ArrayRef, Expr, IterVec, Kernel, KernelBuilder, KernelError,
    OpKind, Statement, StmtId,
};
pub use lint::{
    lint_kernel, lints_clean, uniform_distance, Lint, LintCode, LintOptions, LintSeverity,
};
pub use parse::{parse_kernel, ParseError};
