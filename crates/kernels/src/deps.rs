//! Dependence analysis over the affine IR.
//!
//! Computes the inter-iteration dependence structure that drives both the
//! Table I categorization and the systolic mapping search:
//!
//! * **flow dependencies** — an iteration reads an element written by an
//!   earlier iteration (accumulators, recurrences), found by exact
//!   last-writer analysis over a sample block;
//! * **reuse dependencies** — several iterations read the same live-in
//!   element (operand forwarding chains in a systolic schedule), detected
//!   per static access function as the loop levels its indices are
//!   invariant in.

use std::collections::HashMap;
use std::fmt;

use crate::ir::{ArrayId, IterVec, Kernel, StmtId};

/// How a dependence arises.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Read-after-write between iterations (true dataflow).
    Flow,
    /// Read-read reuse of a live-in element (systolic forwarding chain).
    Reuse,
}

/// An inter-iteration dependence with a constant distance vector.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Dependence {
    /// Flow or reuse.
    pub kind: DepKind,
    /// Iteration distance (consumer iteration − producer iteration).
    pub distance: IterVec,
    /// Array carrying the dependence.
    pub array: ArrayId,
}

/// Result of analysing a kernel's inter-iteration dependence structure.
#[derive(Clone, Debug)]
pub struct DepAnalysis {
    /// Distinct dependence distance vectors (flow and reuse).
    pub dependences: Vec<Dependence>,
    /// For each loop level, `true` if some dependence has a non-zero
    /// component at that level.
    pub carried_levels: Vec<bool>,
}

impl DepAnalysis {
    /// `true` if the kernel has any inter-iteration dependence.
    pub fn has_inter_iteration_deps(&self) -> bool {
        self.dependences.iter().any(|d| d.distance.iter().any(|&x| x != 0))
    }

    /// Distinct non-zero flow-dependence distances.
    pub fn flow_distances(&self) -> Vec<IterVec> {
        let mut out: Vec<IterVec> = self
            .dependences
            .iter()
            .filter(|d| d.kind == DepKind::Flow && d.distance.iter().any(|&x| x != 0))
            .map(|d| d.distance.clone())
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

/// Table I category of a loop kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelCategory {
    /// No inter-iteration dependency (any dimensionality).
    NoInterIterationDeps,
    /// Inter-iteration dependencies, 1-D loop.
    DepsDim1,
    /// Inter-iteration dependencies, 2-D loop nest.
    DepsDim2,
    /// Inter-iteration dependencies, 3-D loop nest.
    DepsDim3,
    /// Inter-iteration dependencies, 4-D loop nest.
    DepsDim4,
}

impl fmt::Display for KernelCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelCategory::NoInterIterationDeps => write!(f, "no inter-iteration dependency"),
            KernelCategory::DepsDim1 => write!(f, "inter-iteration deps, Dim = 1"),
            KernelCategory::DepsDim2 => write!(f, "inter-iteration deps, Dim = 2"),
            KernelCategory::DepsDim3 => write!(f, "inter-iteration deps, Dim = 3"),
            KernelCategory::DepsDim4 => write!(f, "inter-iteration deps, Dim = 4"),
        }
    }
}

/// Size of the sample block used for exact dependence extraction. Large
/// enough that boundary effects do not hide interior dependences, small
/// enough to stay fast for 4-D kernels.
const SAMPLE_EXTENT: usize = 4;

/// Analyses a kernel's inter-iteration dependences over a sample block.
///
/// Flow dependences are extracted exactly (per element, last writer wins);
/// only distances that repeat for every interior iteration are reported, so
/// one-off boundary effects do not produce spurious vectors. Reuse
/// dependences are derived per static read access from the loop levels its
/// index expressions are invariant in (unit distance along the innermost
/// such level, matching the forwarding chains built by `himap-dfg`).
///
/// # Example
///
/// ```
/// use himap_kernels::{suite, DepAnalysis, DepKind};
///
/// let analysis = himap_kernels::DepAnalysis::of(&suite::gemm());
/// assert!(analysis.has_inter_iteration_deps());
/// // C accumulates along k:
/// assert!(analysis.flow_distances().contains(&vec![0, 0, 1]));
/// ```
impl DepAnalysis {
    /// Runs the analysis. See the type-level docs for the method.
    pub fn of(kernel: &Kernel) -> DepAnalysis {
        analyze(kernel)
    }
}

fn analyze(kernel: &Kernel) -> DepAnalysis {
    let dims = kernel.dims();
    let block = vec![SAMPLE_EXTENT; dims];
    // Exact last-writer map: (array, element) -> writer iteration.
    let mut last_writer: HashMap<(ArrayId, Vec<i64>), IterVec> = HashMap::new();
    // Flow distances observed, with a count of observations.
    let mut flow_counts: HashMap<(ArrayId, IterVec), usize> = HashMap::new();
    for iter in kernel.iteration_space(&block) {
        for (sid, stmt) in kernel.stmts().iter().enumerate() {
            let _ = StmtId(sid as u32);
            for read in stmt.value.reads() {
                let elem = read.element_at(&iter);
                if let Some(writer) = last_writer.get(&(read.array, elem)) {
                    let dist: IterVec = iter.iter().zip(writer).map(|(c, p)| c - p).collect();
                    if dist.iter().any(|&x| x != 0) {
                        *flow_counts.entry((read.array, dist)).or_insert(0) += 1;
                    }
                }
            }
            let elem = stmt.target.element_at(&iter);
            last_writer.insert((stmt.target.array, elem), iter.clone());
        }
    }
    let mut dependences = Vec::new();
    // Keep distances seen more than once: constant-distance recurrences fire
    // for (almost) every iteration of the sample block, one-off distances are
    // boundary artefacts of non-uniform reads (e.g. Floyd–Warshall pivots,
    // which the DFG builder chains into unit steps anyway).
    for ((array, dist), count) in flow_counts {
        if count >= 2 {
            dependences.push(Dependence { kind: DepKind::Flow, distance: dist, array });
        }
    }
    // Reuse chains: per static read access function.
    for stmt in kernel.stmts() {
        for read in stmt.value.reads() {
            if let Some(level) = reuse_level(kernel, read) {
                let mut distance = vec![0; dims];
                distance[level] = 1;
                dependences.push(Dependence { kind: DepKind::Reuse, distance, array: read.array });
            }
        }
    }
    dependences.sort_by(|a, b| (a.kind as u8, &a.distance).cmp(&(b.kind as u8, &b.distance)));
    dependences.dedup();
    let mut carried_levels = vec![false; dims];
    for dep in &dependences {
        for (lvl, &x) in dep.distance.iter().enumerate() {
            if x != 0 {
                carried_levels[lvl] = true;
            }
        }
    }
    DepAnalysis { dependences, carried_levels }
}

/// The loop level along which a read access is forwarded in a systolic
/// schedule: the innermost level its indices are invariant in, provided the
/// array is never written by the kernel (live-in reuse only).
pub(crate) fn reuse_level(kernel: &Kernel, read: &crate::ir::ArrayRef) -> Option<usize> {
    let written = kernel.stmts().iter().any(|s| s.target.array == read.array);
    if written {
        return None;
    }
    (0..kernel.dims()).rev().find(|&lvl| read.invariant_in(lvl))
}

/// Classifies a kernel into its Table I category.
///
/// # Example
///
/// ```
/// use himap_kernels::{classify, suite, KernelCategory};
///
/// assert_eq!(classify(&suite::gemm()), KernelCategory::DepsDim3);
/// ```
pub fn classify(kernel: &Kernel) -> KernelCategory {
    let analysis = DepAnalysis::of(kernel);
    if !analysis.has_inter_iteration_deps() {
        return KernelCategory::NoInterIterationDeps;
    }
    match kernel.dims() {
        1 => KernelCategory::DepsDim1,
        2 => KernelCategory::DepsDim2,
        3 => KernelCategory::DepsDim3,
        _ => KernelCategory::DepsDim4,
    }
}

#[allow(clippy::unwrap_used, clippy::expect_used)]
#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{AffineExpr, ArrayRef, Expr, KernelBuilder, OpKind};
    use crate::suite;

    #[test]
    fn gemm_dependences() {
        let a = DepAnalysis::of(&suite::gemm());
        assert!(a.has_inter_iteration_deps());
        // Accumulation of C along k.
        assert!(a.flow_distances().contains(&vec![0, 0, 1]));
        // A reused along j, B reused along i.
        let reuse: Vec<_> = a.dependences.iter().filter(|d| d.kind == DepKind::Reuse).collect();
        assert!(reuse.iter().any(|d| d.distance == vec![0, 1, 0]));
        assert!(reuse.iter().any(|d| d.distance == vec![1, 0, 0]));
        assert_eq!(a.carried_levels, vec![true, true, true]);
    }

    #[test]
    fn bicg_dependences() {
        let a = DepAnalysis::of(&suite::bicg());
        let flows = a.flow_distances();
        assert!(flows.contains(&vec![1, 0]), "s[j] accumulates along i: {flows:?}");
        assert!(flows.contains(&vec![0, 1]), "q[i] accumulates along j: {flows:?}");
    }

    #[test]
    fn adi_dependences_one_dimensional() {
        let a = DepAnalysis::of(&suite::adi());
        assert!(a.has_inter_iteration_deps());
        // All dependences of the column sweep run along j only.
        for dep in &a.dependences {
            assert_eq!(dep.distance[0], 0, "unexpected i-carried dep: {dep:?}");
        }
        assert_eq!(a.carried_levels, vec![false, true]);
    }

    #[test]
    fn mvt_has_deps_on_both_levels() {
        let a = DepAnalysis::of(&suite::mvt());
        assert_eq!(a.carried_levels, vec![true, true]);
    }

    #[test]
    fn classification_matches_table1() {
        use KernelCategory::*;
        assert_eq!(classify(&suite::adi()), DepsDim2);
        assert_eq!(classify(&suite::atax()), DepsDim2);
        assert_eq!(classify(&suite::bicg()), DepsDim2);
        assert_eq!(classify(&suite::mvt()), DepsDim2);
        assert_eq!(classify(&suite::gemm()), DepsDim3);
        assert_eq!(classify(&suite::syrk()), DepsDim3);
        assert_eq!(classify(&suite::floyd_warshall()), DepsDim3);
        assert_eq!(classify(&suite::ttm()), DepsDim4);
    }

    #[test]
    fn independent_kernel_classifies_as_no_deps() {
        // y[i][j] = x[i][j] * 2 — every iteration independent, no reuse.
        let mut b = KernelBuilder::new("scale", 2);
        let x = b.array("x", 2);
        let y = b.array("y", 2);
        let idx = vec![AffineExpr::var(0, 2), AffineExpr::var(1, 2)];
        b.stmt(
            ArrayRef::new(y, idx.clone()),
            Expr::binary(OpKind::Mul, Expr::Read(ArrayRef::new(x, idx)), Expr::Const(2)),
        );
        let k = b.build().unwrap();
        assert_eq!(classify(&k), KernelCategory::NoInterIterationDeps);
    }

    #[test]
    fn one_dimensional_recurrence() {
        // fib-like: a[i] = a[i-1] + b[i]
        let mut bld = KernelBuilder::new("rec1d", 1);
        let a = bld.array("a", 1);
        let b = bld.array("b", 1);
        bld.stmt(
            ArrayRef::new(a, vec![AffineExpr::var(0, 1)]),
            Expr::binary(
                OpKind::Add,
                Expr::Read(ArrayRef::new(a, vec![AffineExpr::new(vec![1], -1)])),
                Expr::Read(ArrayRef::new(b, vec![AffineExpr::var(0, 1)])),
            ),
        );
        let k = bld.build().unwrap();
        assert_eq!(classify(&k), KernelCategory::DepsDim1);
        let analysis = DepAnalysis::of(&k);
        assert_eq!(analysis.flow_distances(), vec![vec![1]]);
    }

    #[test]
    fn reuse_level_picks_innermost_invariant() {
        let gemm = suite::gemm();
        // A[i][k] is invariant in j (level 1).
        let reads = gemm.stmts()[0].value.reads();
        let a_read =
            reads.iter().find(|r| gemm.arrays()[r.array.index()].name == "A").expect("A read");
        assert_eq!(reuse_level(&gemm, a_read), Some(1));
        // C is written, so its reads never get a reuse chain.
        let c_read =
            reads.iter().find(|r| gemm.arrays()[r.array.index()].name == "C").expect("C read");
        assert_eq!(reuse_level(&gemm, c_read), None);
    }
}
