//! The benchmark kernels evaluated in the HiMap paper.
//!
//! Table II of the paper evaluates eight multi-dimensional kernels with
//! inter-iteration dependencies: ADI, ATAX, BICG, MVT (2-D), GEMM, SYRK,
//! Floyd–Warshall (3-D) and TTM (4-D). This module provides each of them as
//! an affine [`Kernel`], plus the full categorized kernel inventory of
//! Table I.
//!
//! The kernel bodies follow the paper's operation counts (e.g. §VI: "Kernels
//! ADI, BiCG, and FW consist of five, four, and two compute operations in one
//! iteration"): BiCG has 4 ops, ADI 5 ops, FW 2 ops, GEMM/SYRK/TTM 2 ops,
//! ATAX/MVT 4 ops.

// Suite kernels are static data: `build()` failing on one is a programming
// error this crate's tests catch, so constructors panic rather than return
// `Result`.
#![allow(clippy::expect_used)]

use crate::deps::{classify, KernelCategory};
use crate::ir::{AffineExpr, ArrayRef, Expr, Kernel, KernelBuilder, OpKind};

fn var(level: usize, dims: usize) -> AffineExpr {
    AffineExpr::var(level, dims)
}

fn read(array: crate::ir::ArrayId, indices: Vec<AffineExpr>) -> Expr {
    Expr::Read(ArrayRef::new(array, indices))
}

/// BiCG sub-kernel of the BiCGStab linear solver (PolyBench `bicg`).
///
/// ```text
/// for i, j:
///   s[j] = s[j] + r[i] * A[i][j]
///   q[i] = q[i] + A[i][j] * p[j]
/// ```
///
/// Two accumulations with orthogonal loop-carried dependencies: `s[j]` along
/// `i` and `q[i]` along `j`; `r[i]` and `p[j]` are reused (forwarded) along
/// the opposite dimensions. 4 compute ops per iteration.
pub fn bicg() -> Kernel {
    let d = 2;
    let mut b = KernelBuilder::new("bicg", d);
    let a = b.array("A", 2);
    let s = b.array("s", 1);
    let q = b.array("q", 1);
    let p = b.array("p", 1);
    let r = b.array("r", 1);
    let (i, j) = (var(0, d), var(1, d));
    // s[j] = s[j] + r[i] * A[i][j]
    b.stmt(
        ArrayRef::new(s, vec![j.clone()]),
        Expr::binary(
            OpKind::Add,
            read(s, vec![j.clone()]),
            Expr::binary(
                OpKind::Mul,
                read(r, vec![i.clone()]),
                read(a, vec![i.clone(), j.clone()]),
            ),
        ),
    );
    // q[i] = q[i] + A[i][j] * p[j]
    b.stmt(
        ArrayRef::new(q, vec![i.clone()]),
        Expr::binary(
            OpKind::Add,
            read(q, vec![i.clone()]),
            Expr::binary(OpKind::Mul, read(a, vec![i, j.clone()]), read(p, vec![j])),
        ),
    );
    b.build().expect("bicg kernel is well-formed")
}

/// Matrix-transpose-and-vector-multiply, fused form (PolyBench `atax`).
///
/// ```text
/// for i, j:
///   tmp[i] = tmp[i] + A[i][j] * x[j]
///   y[j]   = y[j]   + A[i][j] * z[i]
/// ```
///
/// 4 compute ops per iteration; dependencies along both dimensions.
pub fn atax() -> Kernel {
    let d = 2;
    let mut b = KernelBuilder::new("atax", d);
    let a = b.array("A", 2);
    let tmp = b.array("tmp", 1);
    let x = b.array("x", 1);
    let y = b.array("y", 1);
    let z = b.array("z", 1);
    let (i, j) = (var(0, d), var(1, d));
    b.stmt(
        ArrayRef::new(tmp, vec![i.clone()]),
        Expr::binary(
            OpKind::Add,
            read(tmp, vec![i.clone()]),
            Expr::binary(
                OpKind::Mul,
                read(a, vec![i.clone(), j.clone()]),
                read(x, vec![j.clone()]),
            ),
        ),
    );
    b.stmt(
        ArrayRef::new(y, vec![j.clone()]),
        Expr::binary(
            OpKind::Add,
            read(y, vec![j.clone()]),
            Expr::binary(OpKind::Mul, read(a, vec![i.clone(), j]), read(z, vec![i])),
        ),
    );
    b.build().expect("atax kernel is well-formed")
}

/// Matrix-vector product and transpose (PolyBench `mvt`).
///
/// ```text
/// for i, j:
///   x1[i] = x1[i] + A[i][j] * y1[j]
///   x2[i] = x2[i] + A[j][i] * y2[j]
/// ```
///
/// 4 compute ops per iteration; accumulations along `j`, vector reuse along
/// `i`.
pub fn mvt() -> Kernel {
    let d = 2;
    let mut b = KernelBuilder::new("mvt", d);
    let a = b.array("A", 2);
    let x1 = b.array("x1", 1);
    let x2 = b.array("x2", 1);
    let y1 = b.array("y1", 1);
    let y2 = b.array("y2", 1);
    let (i, j) = (var(0, d), var(1, d));
    b.stmt(
        ArrayRef::new(x1, vec![i.clone()]),
        Expr::binary(
            OpKind::Add,
            read(x1, vec![i.clone()]),
            Expr::binary(
                OpKind::Mul,
                read(a, vec![i.clone(), j.clone()]),
                read(y1, vec![j.clone()]),
            ),
        ),
    );
    b.stmt(
        ArrayRef::new(x2, vec![i.clone()]),
        Expr::binary(
            OpKind::Add,
            read(x2, vec![i.clone()]),
            Expr::binary(OpKind::Mul, read(a, vec![j.clone(), i]), read(y2, vec![j])),
        ),
    );
    b.build().expect("mvt kernel is well-formed")
}

/// Alternating-direction-implicit column sweep (PolyBench `adi`, inner
/// recurrences).
///
/// ```text
/// for i, j:
///   p[i][j] = b[i][j] - a[i][j] * p[i][j-1]
///   q[i][j] = e[i][j] * (d[i][j] + c[i][j] * q[i][j-1])
/// ```
///
/// The two coupled first-order recurrences of the ADI forward sweep
/// (coefficient and right-hand-side propagation). 5 compute ops per
/// iteration with dataflow depth 3 — matching the paper's sub-CGRA mapping
/// `(2,1,3)` at 5/6 = 83 % utilization (§VI). Both recurrences run along
/// `j` only, so the dependence pattern is one-dimensional (3 unique
/// iterations, Table II).
pub fn adi() -> Kernel {
    let d = 2;
    let mut b = KernelBuilder::new("adi", d);
    let a = b.array("a", 2);
    let bb = b.array("b", 2);
    let c = b.array("c", 2);
    let dd = b.array("d", 2);
    let e = b.array("e", 2);
    let p = b.array("p", 2);
    let q = b.array("q", 2);
    let (i, j) = (var(0, d), var(1, d));
    let jm1 = AffineExpr::new(vec![0, 1], -1);
    // p[i][j] = b[i][j] - a[i][j] * p[i][j-1]
    b.stmt(
        ArrayRef::new(p, vec![i.clone(), j.clone()]),
        Expr::binary(
            OpKind::Sub,
            read(bb, vec![i.clone(), j.clone()]),
            Expr::binary(
                OpKind::Mul,
                read(a, vec![i.clone(), j.clone()]),
                read(p, vec![i.clone(), jm1.clone()]),
            ),
        ),
    );
    // q[i][j] = e[i][j] * (d[i][j] + c[i][j] * q[i][j-1])
    b.stmt(
        ArrayRef::new(q, vec![i.clone(), j.clone()]),
        Expr::binary(
            OpKind::Mul,
            read(e, vec![i.clone(), j.clone()]),
            Expr::binary(
                OpKind::Add,
                read(dd, vec![i.clone(), j.clone()]),
                Expr::binary(
                    OpKind::Mul,
                    read(c, vec![i, j.clone()]),
                    read(q, vec![var(0, d), jm1]),
                ),
            ),
        ),
    );
    b.build().expect("adi kernel is well-formed")
}

/// General matrix multiply `C += A·B` (PolyBench `gemm`).
///
/// ```text
/// for i, j, k:
///   C[i][j] = C[i][j] + A[i][k] * B[k][j]
/// ```
///
/// 2 compute ops per iteration; accumulation along `k`, `A` reused along `j`,
/// `B` reused along `i` — the TPU-style systolic dataflow of §III.
pub fn gemm() -> Kernel {
    let d = 3;
    let mut b = KernelBuilder::new("gemm", d);
    let c = b.array("C", 2);
    let a = b.array("A", 2);
    let bb = b.array("B", 2);
    let (i, j, k) = (var(0, d), var(1, d), var(2, d));
    b.stmt(
        ArrayRef::new(c, vec![i.clone(), j.clone()]),
        Expr::binary(
            OpKind::Add,
            read(c, vec![i.clone(), j.clone()]),
            Expr::binary(OpKind::Mul, read(a, vec![i, k.clone()]), read(bb, vec![k, j])),
        ),
    );
    b.build().expect("gemm kernel is well-formed")
}

/// Symmetric rank-k update `C += A·Aᵀ` (PolyBench `syrk`).
///
/// ```text
/// for i, j, k:
///   C[i][j] = C[i][j] + A[i][k] * A2[j][k]
/// ```
///
/// `A2` is the second operand stream (numerically equal to `A`; modelled as a
/// distinct array so that both reuse chains stay regular, as a systolic
/// implementation would stream them separately). 2 compute ops per iteration.
pub fn syrk() -> Kernel {
    let d = 3;
    let mut b = KernelBuilder::new("syrk", d);
    let c = b.array("C", 2);
    let a = b.array("A", 2);
    let a2 = b.array("A2", 2);
    let (i, j, k) = (var(0, d), var(1, d), var(2, d));
    b.stmt(
        ArrayRef::new(c, vec![i.clone(), j.clone()]),
        Expr::binary(
            OpKind::Add,
            read(c, vec![i.clone(), j.clone()]),
            Expr::binary(OpKind::Mul, read(a, vec![i, k.clone()]), read(a2, vec![j, k])),
        ),
    );
    b.build().expect("syrk kernel is well-formed")
}

/// Floyd–Warshall all-pairs shortest paths (PolyBench `floyd-warshall`).
///
/// ```text
/// for k, i, j:
///   D[k+1][i][j] = min(D[k][i][j], D[k][i][k] + D[k][k][j])
/// ```
///
/// The versioned (Jacobi) form of the classic in-place update — equivalent
/// to it because the pivot row and column are invariant during step `k`
/// (`D[k][k] = 0` for a distance matrix), the standard transformation used
/// by systolic FW designs. 2 compute ops per iteration.
///
/// The pivot reads `D[k][i][k]` and `D[k][k][j]` carry the "complex
/// inter-iteration dependencies" the paper singles out (§V): every iteration
/// of step `k` needs pivot values produced at step `k−1` by arbitrarily
/// distant iterations, in both mesh directions — no linear systolic schedule
/// can forward that hop-by-hop. Those two reads are therefore
/// *memory-routed* ([`Kernel::is_mem_routed`]): each iteration loads them
/// from the PE-local data memory / on-chip banks the paper's architecture
/// provides, and the mapper separately proves the producing macro step
/// precedes the consuming one. Only the accumulator `D[k][i][j]` flows
/// through the mesh.
pub fn floyd_warshall() -> Kernel {
    let d = 3;
    let mut b = KernelBuilder::new("floyd-warshall", d);
    let dist = b.array("D", 3);
    let (k, i, j) = (var(0, d), var(1, d), var(2, d));
    let kp1 = AffineExpr::new(vec![1, 0, 0], 1);
    let s = b.stmt(
        ArrayRef::new(dist, vec![kp1, i.clone(), j.clone()]),
        Expr::binary(
            OpKind::Min,
            read(dist, vec![k.clone(), i.clone(), j.clone()]),
            Expr::binary(
                OpKind::Add,
                read(dist, vec![k.clone(), i, k.clone()]),
                read(dist, vec![k.clone(), k, j]),
            ),
        ),
    );
    // Reads in evaluation order: 0 = D[k][i][j], 1 = D[k][i][k],
    // 2 = D[k][k][j].
    b.route_read_via_memory(s, 1);
    b.route_read_via_memory(s, 2);
    b.build().expect("floyd-warshall kernel is well-formed")
}

/// Tensor-times-matrix contraction from Tucker decomposition (the paper's
/// `ttm`, cf. PolyBench `doitgen`).
///
/// ```text
/// for i, j, k, l:
///   Y[i][j][k] = Y[i][j][k] + X[i][j][l] * U[k][l]
/// ```
///
/// 2 compute ops per iteration; accumulation along `l`, `X` reused along `k`,
/// `U` reused along `j` (and `i`).
pub fn ttm() -> Kernel {
    let d = 4;
    let mut b = KernelBuilder::new("ttm", d);
    let y = b.array("Y", 3);
    let x = b.array("X", 3);
    let u = b.array("U", 2);
    let (i, j, k, l) = (var(0, d), var(1, d), var(2, d), var(3, d));
    b.stmt(
        ArrayRef::new(y, vec![i.clone(), j.clone(), k.clone()]),
        Expr::binary(
            OpKind::Add,
            read(y, vec![i.clone(), j.clone(), k.clone()]),
            Expr::binary(OpKind::Mul, read(x, vec![i, j, l.clone()]), read(u, vec![k, l])),
        ),
    );
    b.build().expect("ttm kernel is well-formed")
}

/// All eight multi-dimensional kernels of Table II, in the paper's order.
pub fn all() -> Vec<Kernel> {
    vec![adi(), atax(), bicg(), mvt(), gemm(), syrk(), floyd_warshall(), ttm()]
}

/// Looks up one of the Table II kernels by (case-insensitive) name.
///
/// Accepts `adi`, `atax`, `bicg`, `mvt`, `gemm`, `syrk`, `fw` /
/// `floyd-warshall`, and `ttm`. Returns `None` for unknown names.
pub fn by_name(name: &str) -> Option<Kernel> {
    match name.to_ascii_lowercase().as_str() {
        "adi" => Some(adi()),
        "atax" => Some(atax()),
        "bicg" => Some(bicg()),
        "mvt" => Some(mvt()),
        "gemm" => Some(gemm()),
        "syrk" => Some(syrk()),
        "fw" | "floyd-warshall" | "floyd_warshall" => Some(floyd_warshall()),
        "ttm" => Some(ttm()),
        "conv2d" => Some(conv2d()),
        "stencil2d" => Some(stencil2d()),
        "syr2k" => Some(syr2k()),
        _ => None,
    }
}

/// One row of the paper's Table I kernel inventory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InventoryEntry {
    /// Benchmark suite the kernel comes from.
    pub suite: &'static str,
    /// Kernel name as printed in Table I.
    pub name: &'static str,
    /// Category assigned in Table I.
    pub category: KernelCategory,
}

/// The categorized kernel inventory of Table I.
///
/// The eight kernels this repository implements as full IR are classified
/// *computationally* via [`classify`]; the remaining Table I entries are
/// recorded as metadata so the `table1` generator can reproduce the full
/// table.
pub fn table1_inventory() -> Vec<InventoryEntry> {
    use KernelCategory::*;
    let mut rows = vec![
        // No inter-iteration dependency (Dim = 1/2/3).
        ("MachSuite", "aes_mix_col", NoInterIterationDeps),
        ("MachSuite", "add_row", NoInterIterationDeps),
        ("MachSuite", "bd_softmax", NoInterIterationDeps),
        ("MachSuite", "relu", NoInterIterationDeps),
        ("MachSuite", "add_bias", NoInterIterationDeps),
        ("MachSuite", "take_diff", NoInterIterationDeps),
        ("MachSuite", "get_delta_matrix_weight", NoInterIterationDeps),
        ("MachSuite", "knn_md", NoInterIterationDeps),
        ("MachSuite", "update_weights", NoInterIterationDeps),
        ("MachSuite", "viterbi_comp_prob", NoInterIterationDeps),
        ("MiBench", "jpeg_fdct_islow", NoInterIterationDeps),
        ("PolyBench", "huffman_encode", NoInterIterationDeps),
        ("PolyBench", "correlation", NoInterIterationDeps),
        ("PolyBench", "covariance", NoInterIterationDeps),
        ("PolyBench", "trisolv", NoInterIterationDeps),
        // With inter-iteration dependency, Dim = 1.
        ("MachSuite", "aes_expand_key", DepsDim1),
        ("MachSuite", "spmv", DepsDim1),
        ("MachSuite", "viterbi", DepsDim1),
        ("MiBench", "basic_math_usqrt", DepsDim1),
        ("MiBench", "susan", DepsDim1),
        ("PolyBench", "stencil_jacobi1d", DepsDim1),
        ("PolyBench", "cholesky", DepsDim1),
        ("PolyBench", "symm", DepsDim1),
        ("PolyBench", "gesummv", DepsDim1),
        ("PolyBench", "durbin", DepsDim1),
        ("PolyBench", "dynprog", DepsDim1),
        ("PolyBench", "gramschmidt", DepsDim1),
        ("PolyBench", "reg_detect", DepsDim1),
        // With inter-iteration dependency, Dim = 2.
        ("PolyBench", "adi", DepsDim2),
        ("PolyBench", "atax", DepsDim2),
        ("PolyBench", "bicg", DepsDim2),
        ("PolyBench", "mvt", DepsDim2),
        ("PolyBench", "fd2d", DepsDim2),
        ("PolyBench", "gemmver", DepsDim2),
        ("PolyBench", "jacobi_2d", DepsDim2),
        ("MachSuite", "nw", DepsDim2),
        ("MachSuite", "stencil_2d", DepsDim2),
        ("—", "conv2d", DepsDim2),
        // With inter-iteration dependency, Dim = 3.
        ("PolyBench", "gemm", DepsDim3),
        ("PolyBench", "syrk", DepsDim3),
        ("PolyBench", "2mm", DepsDim3),
        ("PolyBench", "floyd-warshall", DepsDim3),
        ("MachSuite", "fft", DepsDim3),
        ("—", "conv3d", DepsDim3),
        // With inter-iteration dependency, Dim = 4.
        ("PolyBench", "ttm", DepsDim4),
        ("PolyBench", "doitgen", DepsDim4),
    ];
    // The eight implemented kernels must classify into the same categories
    // computationally; `classify` is the source of truth for them.
    for kernel in all() {
        let computed = classify(&kernel);
        for row in &mut rows {
            if row.1 == kernel.name() {
                debug_assert_eq!(row.2, computed, "Table I category mismatch for {}", row.1);
                row.2 = computed;
            }
        }
    }
    rows.into_iter()
        .map(|(suite, name, category)| InventoryEntry { suite, name, category })
        .collect()
}

#[allow(clippy::unwrap_used, clippy::expect_used)]
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_counts_match_paper() {
        // §VI: ADI has five, BiCG four and FW two compute ops per iteration.
        assert_eq!(adi().compute_ops_per_iteration(), 5);
        assert_eq!(bicg().compute_ops_per_iteration(), 4);
        assert_eq!(floyd_warshall().compute_ops_per_iteration(), 2);
        assert_eq!(atax().compute_ops_per_iteration(), 4);
        assert_eq!(mvt().compute_ops_per_iteration(), 4);
        assert_eq!(gemm().compute_ops_per_iteration(), 2);
        assert_eq!(syrk().compute_ops_per_iteration(), 2);
        assert_eq!(ttm().compute_ops_per_iteration(), 2);
    }

    #[test]
    fn dims_match_table2() {
        let expected = [
            ("adi", 2),
            ("atax", 2),
            ("bicg", 2),
            ("mvt", 2),
            ("gemm", 3),
            ("syrk", 3),
            ("floyd-warshall", 3),
            ("ttm", 4),
        ];
        for (name, dims) in expected {
            let k = by_name(name).expect("kernel exists");
            assert_eq!(k.dims(), dims, "{name}");
        }
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("GEMM").is_some());
        assert!(by_name("fw").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn all_returns_eight() {
        assert_eq!(all().len(), 8);
    }

    #[test]
    fn inventory_covers_all_categories() {
        let inv = table1_inventory();
        assert!(inv.len() > 40);
        use KernelCategory::*;
        for cat in [NoInterIterationDeps, DepsDim1, DepsDim2, DepsDim3, DepsDim4] {
            assert!(inv.iter().any(|e| e.category == cat), "{cat:?} missing");
        }
    }
}

/// 2-D convolution with a fully unrolled 3x3 window (the paper's Table I
/// lists Conv2D among the 2-D kernels with inter-iteration dependencies).
///
/// ```text
/// for i, j:
///   y[i][j] = Σ_{r,s ∈ 0..3} w[r][s] * x[i+r][j+s]
/// ```
///
/// 17 compute ops per iteration (9 multiplies, 8 adds). Neighbouring
/// iterations share window pixels, so the unrolled DFG carries dense
/// forwarding chains along both dimensions.
pub fn conv2d() -> Kernel {
    let d = 2;
    let mut b = KernelBuilder::new("conv2d", d);
    let y = b.array("y", 2);
    let x = b.array("x", 2);
    let w = b.array("w", 2);
    let (i, j) = (var(0, d), var(1, d));
    let mut acc: Option<Expr> = None;
    for r in 0..3i64 {
        for s in 0..3i64 {
            let tap = Expr::binary(
                OpKind::Mul,
                read(w, vec![AffineExpr::constant(r, d), AffineExpr::constant(s, d)]),
                read(x, vec![AffineExpr::new(vec![1, 0], r), AffineExpr::new(vec![0, 1], s)]),
            );
            acc = Some(match acc {
                None => tap,
                Some(prev) => Expr::binary(OpKind::Add, prev, tap),
            });
        }
    }
    b.stmt(ArrayRef::new(y, vec![i, j]), acc.expect("window is non-empty"));
    b.build().expect("conv2d kernel is well-formed")
}

/// 5-point 2-D Jacobi stencil (PolyBench `stencil2d` family).
///
/// ```text
/// for i, j:
///   y[i][j] = x[i][j] + x[i-1][j] + x[i+1][j] + x[i][j-1] + x[i][j+1]
/// ```
///
/// 4 compute ops per iteration — all adds, no multiplies — which makes it
/// the stress kernel for multiplier-poor heterogeneous fabrics: it must map
/// on a corner-multiplier array without touching any `mul`-capable corner.
pub fn stencil2d() -> Kernel {
    let d = 2;
    let mut b = KernelBuilder::new("stencil2d", d);
    let y = b.array("y", 2);
    let x = b.array("x", 2);
    let (i, j) = (var(0, d), var(1, d));
    let taps = [
        read(x, vec![i.clone(), j.clone()]),
        read(x, vec![AffineExpr::new(vec![1, 0], -1), j.clone()]),
        read(x, vec![AffineExpr::new(vec![1, 0], 1), j.clone()]),
        read(x, vec![i.clone(), AffineExpr::new(vec![0, 1], -1)]),
        read(x, vec![i.clone(), AffineExpr::new(vec![0, 1], 1)]),
    ];
    let mut acc: Option<Expr> = None;
    for tap in taps {
        acc = Some(match acc {
            None => tap,
            Some(prev) => Expr::binary(OpKind::Add, prev, tap),
        });
    }
    b.stmt(ArrayRef::new(y, vec![i, j]), acc.expect("stencil has taps"));
    b.build().expect("stencil2d kernel is well-formed")
}

/// Symmetric rank-2k update `C += A·B2ᵀ + B·A2ᵀ` (PolyBench `syr2k`).
///
/// ```text
/// for i, j, k:
///   C[i][j] = C[i][j] + A[i][k]*B2[j][k] + B[i][k]*A2[j][k]
/// ```
///
/// 4 compute ops per iteration: two GEMM-like operand streams sharing one
/// accumulator. An extension kernel beyond the paper's Table II set.
pub fn syr2k() -> Kernel {
    let d = 3;
    let mut b = KernelBuilder::new("syr2k", d);
    let c = b.array("C", 2);
    let a = b.array("A", 2);
    let b2 = b.array("B2", 2);
    let bb = b.array("B", 2);
    let a2 = b.array("A2", 2);
    let (i, j, k) = (var(0, d), var(1, d), var(2, d));
    b.stmt(
        ArrayRef::new(c, vec![i.clone(), j.clone()]),
        Expr::binary(
            OpKind::Add,
            Expr::binary(
                OpKind::Add,
                read(c, vec![i.clone(), j.clone()]),
                Expr::binary(
                    OpKind::Mul,
                    read(a, vec![i.clone(), k.clone()]),
                    read(b2, vec![j.clone(), k.clone()]),
                ),
            ),
            Expr::binary(OpKind::Mul, read(bb, vec![i, k.clone()]), read(a2, vec![j, k])),
        ),
    );
    b.build().expect("syr2k kernel is well-formed")
}

#[allow(clippy::unwrap_used, clippy::expect_used)]
#[cfg(test)]
mod extension_tests {
    use super::*;

    #[test]
    fn conv2d_shape() {
        let k = conv2d();
        assert_eq!(k.dims(), 2);
        assert_eq!(k.compute_ops_per_iteration(), 17);
        assert_eq!(classify(&k), KernelCategory::DepsDim2);
    }

    #[test]
    fn stencil2d_shape_is_mul_free() {
        let k = stencil2d();
        assert_eq!(k.dims(), 2);
        assert_eq!(k.compute_ops_per_iteration(), 4);
        assert!(by_name("stencil2d").is_some());
        // No multiplies: the kernel must be mappable on a fabric whose only
        // mul-capable PEs are unreachable corners.
        let text = format!("{k:?}");
        assert!(!text.contains("Mul"), "stencil2d must not multiply");
    }

    #[test]
    fn syr2k_shape() {
        let k = syr2k();
        assert_eq!(k.dims(), 3);
        assert_eq!(k.compute_ops_per_iteration(), 4);
        assert_eq!(classify(&k), KernelCategory::DepsDim3);
    }
}
