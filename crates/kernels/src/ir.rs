//! The affine loop-nest intermediate representation.
//!
//! A [`Kernel`] is a perfect loop nest of `l` levels whose body is a sequence
//! of statements `target[affine indices] = expr`, where `expr` is a tree of
//! arithmetic operations over affine array reads and integer constants. All
//! eight kernels evaluated in the HiMap paper fit this shape.

use std::error::Error;
use std::fmt;

/// Integer vector indexing a point of the iteration space, outermost loop
/// first (the paper's `CI_i`).
pub type IterVec = Vec<i64>;

/// Identifier of an array declared in a [`Kernel`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArrayId(pub(crate) u32);

/// Identifier of a statement within a kernel body (program order).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StmtId(pub(crate) u32);

impl ArrayId {
    /// Dense index of this array in declaration order.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an `ArrayId` from a dense index (declaration order).
    pub fn from_index(index: usize) -> Self {
        ArrayId(index as u32)
    }
}

impl StmtId {
    /// Dense index of this statement in program order.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `StmtId` from a dense index (program order).
    pub fn from_index(index: usize) -> Self {
        StmtId(index as u32)
    }
}

impl fmt::Debug for ArrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "arr{}", self.0)
    }
}

impl fmt::Debug for StmtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stmt{}", self.0)
    }
}

/// An affine expression over the loop iterators: `coeffs · i + constant`.
///
/// # Example
///
/// ```
/// use himap_kernels::AffineExpr;
///
/// // j - 1 in a 2-level nest (i, j)
/// let e = AffineExpr::new(vec![0, 1], -1);
/// assert_eq!(e.eval(&[5, 3]), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct AffineExpr {
    /// One coefficient per loop level, outermost first.
    pub coeffs: Vec<i64>,
    /// Constant offset.
    pub constant: i64,
}

impl AffineExpr {
    /// Creates an affine expression from coefficients and a constant.
    pub fn new(coeffs: Vec<i64>, constant: i64) -> Self {
        AffineExpr { coeffs, constant }
    }

    /// The expression that is just loop iterator `level`.
    pub fn var(level: usize, dims: usize) -> Self {
        let mut coeffs = vec![0; dims];
        coeffs[level] = 1;
        AffineExpr { coeffs, constant: 0 }
    }

    /// The constant expression `c`.
    pub fn constant(c: i64, dims: usize) -> Self {
        AffineExpr { coeffs: vec![0; dims], constant: c }
    }

    /// Evaluates the expression at an iteration point.
    ///
    /// # Panics
    ///
    /// Panics if `iter.len()` differs from the number of coefficients.
    pub fn eval(&self, iter: &[i64]) -> i64 {
        assert_eq!(iter.len(), self.coeffs.len(), "iteration vector arity mismatch");
        self.coeffs.iter().zip(iter).map(|(c, i)| c * i).sum::<i64>() + self.constant
    }

    /// `true` if iterator `level` has a non-zero coefficient.
    pub fn uses_level(&self, level: usize) -> bool {
        self.coeffs.get(level).is_some_and(|&c| c != 0)
    }
}

impl fmt::Display for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = ["i", "j", "k", "l", "m", "n"];
        let mut first = true;
        for (lvl, &c) in self.coeffs.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let name = names.get(lvl).copied().unwrap_or("?");
            if first {
                match c {
                    1 => write!(f, "{name}")?,
                    -1 => write!(f, "-{name}")?,
                    _ => write!(f, "{c}{name}")?,
                }
                first = false;
            } else if c > 0 {
                if c == 1 {
                    write!(f, "+{name}")?;
                } else {
                    write!(f, "+{c}{name}")?;
                }
            } else if c == -1 {
                write!(f, "-{name}")?;
            } else {
                write!(f, "{c}{name}")?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, "+{}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, "{}", self.constant)?;
        }
        Ok(())
    }
}

/// A reference to an array element with affine indices, e.g. `A[i][j-1]`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ArrayRef {
    /// The accessed array.
    pub array: ArrayId,
    /// One affine index expression per array dimension.
    pub indices: Vec<AffineExpr>,
}

impl ArrayRef {
    /// Creates an array reference.
    pub fn new(array: ArrayId, indices: Vec<AffineExpr>) -> Self {
        ArrayRef { array, indices }
    }

    /// Evaluates all index expressions at an iteration point.
    pub fn element_at(&self, iter: &[i64]) -> Vec<i64> {
        self.indices.iter().map(|e| e.eval(iter)).collect()
    }

    /// `true` if no index expression uses loop `level` — i.e. the same
    /// element is accessed by every iteration along that level (data reuse).
    pub fn invariant_in(&self, level: usize) -> bool {
        self.indices.iter().all(|e| !e.uses_level(level))
    }
}

/// Arithmetic operation kinds supported by the CGRA ALU model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Wrapping integer addition.
    Add,
    /// Wrapping integer subtraction.
    Sub,
    /// Wrapping integer multiplication.
    Mul,
    /// Minimum of two values.
    Min,
    /// Maximum of two values.
    Max,
}

impl OpKind {
    /// Applies the operation to two values (wrapping semantics).
    pub fn apply(self, a: i64, b: i64) -> i64 {
        match self {
            OpKind::Add => a.wrapping_add(b),
            OpKind::Sub => a.wrapping_sub(b),
            OpKind::Mul => a.wrapping_mul(b),
            OpKind::Min => a.min(b),
            OpKind::Max => a.max(b),
        }
    }

    /// Short lowercase mnemonic (`add`, `sub`, …).
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpKind::Add => "add",
            OpKind::Sub => "sub",
            OpKind::Mul => "mul",
            OpKind::Min => "min",
            OpKind::Max => "max",
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// An expression tree in a statement body.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Load of an array element.
    Read(ArrayRef),
    /// Integer literal.
    Const(i64),
    /// Binary operation.
    Binary(OpKind, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for a binary operation.
    pub fn binary(op: OpKind, lhs: Expr, rhs: Expr) -> Self {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// Number of binary operations in this expression tree.
    pub fn op_count(&self) -> usize {
        match self {
            Expr::Read(_) | Expr::Const(_) => 0,
            Expr::Binary(_, l, r) => 1 + l.op_count() + r.op_count(),
        }
    }

    /// Collects all array reads in evaluation (left-to-right, post-order) order.
    pub fn reads(&self) -> Vec<&ArrayRef> {
        let mut out = Vec::new();
        self.collect_reads(&mut out);
        out
    }

    fn collect_reads<'a>(&'a self, out: &mut Vec<&'a ArrayRef>) {
        match self {
            Expr::Read(r) => out.push(r),
            Expr::Const(_) => {}
            Expr::Binary(_, l, r) => {
                l.collect_reads(out);
                r.collect_reads(out);
            }
        }
    }
}

/// One assignment in the kernel body: `target = value`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Statement {
    /// Array element written by this statement.
    pub target: ArrayRef,
    /// Right-hand side expression.
    pub value: Expr,
}

/// Declaration of an array used by a kernel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Human-readable name.
    pub name: String,
    /// Number of dimensions.
    pub rank: usize,
}

/// A perfect affine loop nest with a straight-line body.
///
/// Loop extents are not part of the kernel: the block size `(b1, …, bl)` is
/// supplied when the DFG is unrolled, mirroring the paper where block sizes
/// are chosen per CGRA size.
#[derive(Clone, Debug)]
pub struct Kernel {
    name: String,
    dims: usize,
    arrays: Vec<ArrayDecl>,
    stmts: Vec<Statement>,
    mem_routed: Vec<(u32, u8)>,
}

/// Error produced when building an ill-formed [`Kernel`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KernelError {
    /// A statement refers to an array id that was never declared.
    UnknownArray(ArrayId),
    /// An array reference has the wrong number of indices.
    RankMismatch {
        /// The offending array.
        array: ArrayId,
        /// Declared rank.
        expected: usize,
        /// Number of indices supplied.
        found: usize,
    },
    /// An affine expression has the wrong number of coefficients.
    ArityMismatch {
        /// Loop-nest depth of the kernel.
        expected: usize,
        /// Coefficients supplied.
        found: usize,
    },
    /// The kernel body is empty.
    EmptyBody,
    /// A memory-routing mark refers to a non-existent statement or read.
    BadMemRouted {
        /// Statement index of the mark.
        stmt: usize,
        /// Read index of the mark.
        read: u8,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::UnknownArray(a) => write!(f, "statement references undeclared {a:?}"),
            KernelError::RankMismatch { array, expected, found } => {
                write!(f, "{array:?} has rank {expected} but was indexed with {found} indices")
            }
            KernelError::ArityMismatch { expected, found } => {
                write!(f, "affine expression has {found} coefficients, kernel has {expected} loops")
            }
            KernelError::EmptyBody => write!(f, "kernel body has no statements"),
            KernelError::BadMemRouted { stmt, read } => {
                write!(f, "memory-routing mark (stmt {stmt}, read {read}) does not exist")
            }
        }
    }
}

impl Error for KernelError {}

impl Kernel {
    /// Kernel name (e.g. `"bicg"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Loop-nest depth `l` (the paper's `Dim`).
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Declared arrays.
    pub fn arrays(&self) -> &[ArrayDecl] {
        &self.arrays
    }

    /// Body statements in program order.
    pub fn stmts(&self) -> &[Statement] {
        &self.stmts
    }

    /// Statement by id.
    pub fn stmt(&self, id: StmtId) -> &Statement {
        &self.stmts[id.index()]
    }

    /// Number of binary compute operations executed per iteration
    /// (the `|V_F|` of one IDFG).
    pub fn compute_ops_per_iteration(&self) -> usize {
        self.stmts.iter().map(|s| s.value.op_count().max(1)).sum()
    }

    /// `true` if read access `read` (evaluation order) of statement `stmt`
    /// is routed through data memory rather than the mesh.
    ///
    /// Memory-routed reads model dependence patterns that no linear systolic
    /// schedule can carry over mesh links — Floyd–Warshall's pivot row and
    /// column broadcasts. The value travels through the PE-local data
    /// memories / on-chip banks: the producing iteration stores it, each
    /// consuming iteration loads it, and the mapper only has to prove that
    /// the store's macro step precedes the load's.
    pub fn is_mem_routed(&self, stmt: StmtId, read: u8) -> bool {
        self.mem_routed.contains(&(stmt.index() as u32, read))
    }

    /// All memory-routed `(statement, read)` pairs.
    pub fn mem_routed_reads(&self) -> impl Iterator<Item = (StmtId, u8)> + '_ {
        self.mem_routed.iter().map(|&(s, r)| (StmtId(s), r))
    }

    /// Iterates over all points of the block `(b1, …, bl)` in lexicographic
    /// order (outermost loop slowest).
    ///
    /// # Panics
    ///
    /// Panics if `block.len()` differs from [`Kernel::dims`].
    pub fn iteration_space(&self, block: &[usize]) -> IterationSpace {
        assert_eq!(block.len(), self.dims, "block size arity mismatch");
        IterationSpace { block: block.to_vec(), next: Some(vec![0; self.dims]) }
    }
}

/// Iterator over the points of an iteration-space block in lexicographic
/// order. Created by [`Kernel::iteration_space`].
#[derive(Clone, Debug)]
pub struct IterationSpace {
    block: Vec<usize>,
    next: Option<IterVec>,
}

impl Iterator for IterationSpace {
    type Item = IterVec;

    fn next(&mut self) -> Option<IterVec> {
        let current = self.next.clone()?;
        if self.block.contains(&0) {
            self.next = None;
            return None;
        }
        // Advance like an odometer, innermost fastest.
        let mut bump = current.clone();
        let mut level = self.block.len();
        loop {
            if level == 0 {
                self.next = None;
                break;
            }
            level -= 1;
            bump[level] += 1;
            if (bump[level] as usize) < self.block[level] {
                self.next = Some(bump);
                break;
            }
            bump[level] = 0;
        }
        Some(current)
    }
}

/// Builder for [`Kernel`]. Validates array ranks and affine arities.
///
/// # Example
///
/// ```
/// use himap_kernels::{AffineExpr, ArrayRef, Expr, KernelBuilder, OpKind};
///
/// # fn main() -> Result<(), himap_kernels::KernelError> {
/// let mut b = KernelBuilder::new("axpy2d", 2);
/// let x = b.array("x", 2);
/// let y = b.array("y", 2);
/// let idx = vec![AffineExpr::var(0, 2), AffineExpr::var(1, 2)];
/// b.stmt(
///     ArrayRef::new(y, idx.clone()),
///     Expr::binary(
///         OpKind::Add,
///         Expr::Read(ArrayRef::new(y, idx.clone())),
///         Expr::Read(ArrayRef::new(x, idx)),
///     ),
/// );
/// let kernel = b.build()?;
/// assert_eq!(kernel.compute_ops_per_iteration(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct KernelBuilder {
    name: String,
    dims: usize,
    arrays: Vec<ArrayDecl>,
    stmts: Vec<Statement>,
    mem_routed: Vec<(u32, u8)>,
}

impl KernelBuilder {
    /// Starts building a kernel with the given name and loop depth.
    pub fn new(name: impl Into<String>, dims: usize) -> Self {
        KernelBuilder {
            name: name.into(),
            dims,
            arrays: Vec::new(),
            stmts: Vec::new(),
            mem_routed: Vec::new(),
        }
    }

    /// Marks read access `read` of statement `stmt` as routed through data
    /// memory (see [`Kernel::is_mem_routed`]).
    pub fn route_read_via_memory(&mut self, stmt: StmtId, read: u8) {
        self.mem_routed.push((stmt.index() as u32, read));
    }

    /// Declares an array and returns its id.
    pub fn array(&mut self, name: impl Into<String>, rank: usize) -> ArrayId {
        let id = ArrayId(self.arrays.len() as u32);
        self.arrays.push(ArrayDecl { name: name.into(), rank });
        id
    }

    /// Appends a body statement and returns its id.
    pub fn stmt(&mut self, target: ArrayRef, value: Expr) -> StmtId {
        let id = StmtId(self.stmts.len() as u32);
        self.stmts.push(Statement { target, value });
        id
    }

    /// Finalizes the kernel.
    ///
    /// # Errors
    ///
    /// Returns a [`KernelError`] if the body is empty, an array reference is
    /// malformed, or an affine expression has the wrong arity.
    pub fn build(self) -> Result<Kernel, KernelError> {
        if self.stmts.is_empty() {
            return Err(KernelError::EmptyBody);
        }
        let check_ref = |r: &ArrayRef| -> Result<(), KernelError> {
            let decl =
                self.arrays.get(r.array.index()).ok_or(KernelError::UnknownArray(r.array))?;
            if r.indices.len() != decl.rank {
                return Err(KernelError::RankMismatch {
                    array: r.array,
                    expected: decl.rank,
                    found: r.indices.len(),
                });
            }
            for idx in &r.indices {
                if idx.coeffs.len() != self.dims {
                    return Err(KernelError::ArityMismatch {
                        expected: self.dims,
                        found: idx.coeffs.len(),
                    });
                }
            }
            Ok(())
        };
        for stmt in &self.stmts {
            check_ref(&stmt.target)?;
            for read in stmt.value.reads() {
                check_ref(read)?;
            }
        }
        for &(s, r) in &self.mem_routed {
            let valid = self
                .stmts
                .get(s as usize)
                .is_some_and(|stmt| (r as usize) < stmt.value.reads().len());
            if !valid {
                return Err(KernelError::BadMemRouted { stmt: s as usize, read: r });
            }
        }
        Ok(Kernel {
            name: self.name,
            dims: self.dims,
            arrays: self.arrays,
            stmts: self.stmts,
            mem_routed: self.mem_routed,
        })
    }
}

#[allow(clippy::unwrap_used, clippy::expect_used)]
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_eval() {
        let e = AffineExpr::new(vec![2, -1], 3);
        assert_eq!(e.eval(&[1, 4]), 2 - 4 + 3);
        assert!(e.uses_level(0));
        assert!(e.uses_level(1));
        assert!(!AffineExpr::constant(5, 2).uses_level(0));
    }

    #[test]
    fn affine_display() {
        assert_eq!(AffineExpr::var(0, 2).to_string(), "i");
        assert_eq!(AffineExpr::new(vec![0, 1], -1).to_string(), "j-1");
        assert_eq!(AffineExpr::new(vec![1, 1], 0).to_string(), "i+j");
        assert_eq!(AffineExpr::constant(7, 2).to_string(), "7");
        assert_eq!(AffineExpr::new(vec![-1, 0], 2).to_string(), "-i+2");
    }

    #[test]
    fn op_kind_semantics() {
        assert_eq!(OpKind::Add.apply(2, 3), 5);
        assert_eq!(OpKind::Sub.apply(2, 3), -1);
        assert_eq!(OpKind::Mul.apply(4, -2), -8);
        assert_eq!(OpKind::Min.apply(4, -2), -2);
        assert_eq!(OpKind::Max.apply(4, -2), 4);
        assert_eq!(OpKind::Add.apply(i64::MAX, 1), i64::MIN);
    }

    #[test]
    fn expr_op_count_and_reads() {
        let dims = 2;
        let a = ArrayRef::new(ArrayId(0), vec![AffineExpr::var(0, dims)]);
        let b = ArrayRef::new(ArrayId(1), vec![AffineExpr::var(1, dims)]);
        let e = Expr::binary(
            OpKind::Add,
            Expr::Read(a.clone()),
            Expr::binary(OpKind::Mul, Expr::Read(b.clone()), Expr::Const(2)),
        );
        assert_eq!(e.op_count(), 2);
        let reads = e.reads();
        assert_eq!(reads.len(), 2);
        assert_eq!(reads[0], &a);
        assert_eq!(reads[1], &b);
    }

    #[test]
    fn iteration_space_order() {
        let kernel = simple_kernel();
        let pts: Vec<_> = kernel.iteration_space(&[2, 3]).collect();
        assert_eq!(pts.len(), 6);
        assert_eq!(pts[0], vec![0, 0]);
        assert_eq!(pts[1], vec![0, 1]);
        assert_eq!(pts[2], vec![0, 2]);
        assert_eq!(pts[3], vec![1, 0]);
        assert_eq!(pts[5], vec![1, 2]);
    }

    #[test]
    fn iteration_space_empty_block() {
        let kernel = simple_kernel();
        assert_eq!(kernel.iteration_space(&[0, 3]).count(), 0);
    }

    fn simple_kernel() -> Kernel {
        let mut b = KernelBuilder::new("t", 2);
        let a = b.array("a", 2);
        let idx = vec![AffineExpr::var(0, 2), AffineExpr::var(1, 2)];
        b.stmt(
            ArrayRef::new(a, idx.clone()),
            Expr::binary(OpKind::Add, Expr::Read(ArrayRef::new(a, idx)), Expr::Const(1)),
        );
        b.build().expect("valid kernel")
    }

    #[test]
    fn builder_validates_rank() {
        let mut b = KernelBuilder::new("bad", 2);
        let a = b.array("a", 2);
        b.stmt(ArrayRef::new(a, vec![AffineExpr::var(0, 2)]), Expr::Const(0));
        match b.build() {
            Err(KernelError::RankMismatch { expected, found, .. }) => {
                assert_eq!(expected, 2);
                assert_eq!(found, 1);
            }
            other => panic!("expected rank mismatch, got {other:?}"),
        }
    }

    #[test]
    fn builder_validates_arity() {
        let mut b = KernelBuilder::new("bad", 3);
        let a = b.array("a", 1);
        b.stmt(ArrayRef::new(a, vec![AffineExpr::var(0, 2)]), Expr::Const(0));
        assert!(matches!(b.build(), Err(KernelError::ArityMismatch { expected: 3, found: 2 })));
    }

    #[test]
    fn builder_rejects_empty_body() {
        let b = KernelBuilder::new("empty", 1);
        assert_eq!(b.build().unwrap_err(), KernelError::EmptyBody);
    }

    #[test]
    fn invariant_detection() {
        let r = ArrayRef::new(ArrayId(0), vec![AffineExpr::var(0, 3)]);
        assert!(!r.invariant_in(0));
        assert!(r.invariant_in(1));
        assert!(r.invariant_in(2));
    }
}
