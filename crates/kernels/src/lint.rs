//! Kernel-IR lints surfaced *before* mapping starts.
//!
//! The mapper's failure modes for ill-suited kernels are late and opaque
//! (an unroutable candidate walk); these checks catch the three structural
//! problems early, each under a stable diagnostic code:
//!
//! * **K001** — a read of a kernel-written array whose affine access differs
//!   from the writer's in its coefficient matrix (no constant dependence
//!   distance). Such non-uniform accesses cannot ride a systolic forwarding
//!   chain; they are only mappable when explicitly routed through local
//!   memory ([`Kernel::is_mem_routed`]). Error when not memory-routed.
//! * **K002** — a flow-dependence distance component at least as large as
//!   the block extent at that level: the dependence leaves the block and
//!   silently degrades to a cross-block memory dependence. Warning.
//! * **K003** — an ALU operation outside the supported PE op set. Error.
//!
//! The `himap-verify` crate adapts these into its rustc-style
//! [`Diagnostic`](../../verify) representation; here they stay dependency-free.

use std::fmt;

use crate::ir::{Kernel, OpKind, StmtId};

/// Stable code of a kernel lint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LintCode {
    /// Non-uniform access of a kernel-written array without memory routing.
    K001,
    /// Flow-dependence distance exceeds the block extent.
    K002,
    /// Operation unsupported by the PE ALU.
    K003,
}

impl LintCode {
    /// The stable textual code.
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::K001 => "K001",
            LintCode::K002 => "K002",
            LintCode::K003 => "K003",
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Severity of a kernel lint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintSeverity {
    /// Quality concern; mapping may still succeed.
    Warning,
    /// The kernel cannot map correctly as written.
    Error,
}

/// One kernel lint finding.
#[derive(Clone, Debug)]
pub struct Lint {
    /// Stable code.
    pub code: LintCode,
    /// Severity.
    pub severity: LintSeverity,
    /// Human-readable description.
    pub message: String,
    /// Offending statement, when attributable.
    pub stmt: Option<StmtId>,
    /// Offending read-access index within the statement, when attributable.
    pub read: Option<u8>,
}

/// Options of the kernel lint pass.
#[derive(Clone, Debug)]
pub struct LintOptions {
    /// Block extents checked by K002. `None` uses `4` per loop level — the
    /// default free extent the mapper tries first.
    pub block: Option<Vec<usize>>,
    /// The PE ALU's op repertoire (K003). Defaults to every [`OpKind`].
    pub supported_ops: Vec<OpKind>,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions {
            block: None,
            supported_ops: vec![OpKind::Add, OpKind::Sub, OpKind::Mul, OpKind::Min, OpKind::Max],
        }
    }
}

/// Runs all kernel lints, returning findings in deterministic
/// (statement, read) order with K00x groups interleaved per statement.
pub fn lint_kernel(kernel: &Kernel, options: &LintOptions) -> Vec<Lint> {
    let mut out = Vec::new();
    lint_accesses(kernel, &mut out);
    lint_distances(kernel, options, &mut out);
    lint_ops(kernel, options, &mut out);
    out
}

/// `true` when the kernel has no Error-severity lint under default options —
/// the cheap pre-flight gate callers can use before invoking the mapper.
pub fn lints_clean(kernel: &Kernel) -> bool {
    lint_kernel(kernel, &LintOptions::default()).iter().all(|l| l.severity != LintSeverity::Error)
}

/// K001: reads of written arrays must be uniform with the writer (equal
/// coefficient matrices, so the dependence distance is iteration-constant)
/// unless explicitly routed through local memory.
fn lint_accesses(kernel: &Kernel, out: &mut Vec<Lint>) {
    for (sidx, stmt) in kernel.stmts().iter().enumerate() {
        let stmt_id = StmtId::from_index(sidx);
        for (ridx, read) in stmt.value.reads().iter().enumerate() {
            let ridx = ridx as u8;
            if kernel.is_mem_routed(stmt_id, ridx) {
                continue;
            }
            // Compare against every statement writing the same array: a
            // constant dependence distance requires identical coefficients.
            let non_uniform = kernel.stmts().iter().any(|writer| {
                writer.target.array == read.array
                    && writer
                        .target
                        .indices
                        .iter()
                        .zip(&read.indices)
                        .any(|(w, r)| w.coeffs != r.coeffs)
            });
            if non_uniform {
                let name = &kernel.arrays()[read.array.index()].name;
                out.push(Lint {
                    code: LintCode::K001,
                    severity: LintSeverity::Error,
                    message: format!(
                        "read {ridx} of statement {sidx} accesses written array `{name}` \
                         non-uniformly (no constant dependence distance) and is not \
                         memory-routed"
                    ),
                    stmt: Some(stmt_id),
                    read: Some(ridx),
                });
            }
        }
    }
}

/// K002: a dependence-distance component `|d_i| >= b_i` never stays inside
/// the block at level `i`.
///
/// Distances are derived symbolically from the access functions (not from
/// [`DepAnalysis`](crate::deps::DepAnalysis), whose fixed sample block
/// cannot observe distances longer than itself — exactly the ones this
/// lint is about).
fn lint_distances(kernel: &Kernel, options: &LintOptions, out: &mut Vec<Lint>) {
    let block = options.block.clone().unwrap_or_else(|| vec![4; kernel.dims()]);
    let dims = kernel.dims();
    let mut seen: Vec<Vec<i64>> = Vec::new();
    for (sidx, stmt) in kernel.stmts().iter().enumerate() {
        for read in stmt.value.reads() {
            for writer in kernel.stmts() {
                if writer.target.array != read.array {
                    continue;
                }
                let Some(dist) = uniform_distance(&writer.target, read, dims) else {
                    continue;
                };
                if dist.iter().all(|&d| d == 0) || seen.contains(&dist) {
                    continue;
                }
                let escapes =
                    dist.iter().zip(&block).any(|(&d, &b)| d.unsigned_abs() as usize >= b.max(1));
                if escapes {
                    seen.push(dist.clone());
                    out.push(Lint {
                        code: LintCode::K002,
                        severity: LintSeverity::Warning,
                        message: format!(
                            "dependence distance {dist:?} exceeds the block extents \
                             {block:?}; the dependence leaves the block and degrades \
                             to a cross-block memory dependence"
                        ),
                        stmt: Some(StmtId::from_index(sidx)),
                        read: None,
                    });
                }
            }
        }
    }
}

/// The constant iteration distance `d` with `write(p)` feeding `read(p + d)`
/// when both accesses share coefficients and every loop level is pinned by
/// a single-variable index row; `None` when no such constant distance
/// exists (non-uniform access — K001's domain).
///
/// Public because the `himap-analyze` RecMII pass builds its statement-level
/// dependence graph from the same distances the K002 lint derives.
pub fn uniform_distance(
    writer: &crate::ir::ArrayRef,
    read: &crate::ir::ArrayRef,
    dims: usize,
) -> Option<Vec<i64>> {
    if writer.indices.len() != read.indices.len() {
        return None;
    }
    let mut dist: Vec<Option<i64>> = vec![None; dims];
    for (w, r) in writer.indices.iter().zip(&read.indices) {
        if w.coeffs != r.coeffs {
            return None;
        }
        let nz: Vec<usize> =
            w.coeffs.iter().enumerate().filter(|&(_, &c)| c != 0).map(|(j, _)| j).collect();
        match nz.as_slice() {
            // Constant index: the elements only coincide for equal offsets.
            [] => {
                if w.constant != r.constant {
                    return None;
                }
            }
            // c·p + w0 == c·(p + d) + r0  =>  d == (w0 - r0) / c.
            [j] => {
                let c = w.coeffs[*j];
                let diff = w.constant - r.constant;
                if diff % c != 0 {
                    return None;
                }
                let d = diff / c;
                match dist[*j] {
                    None => dist[*j] = Some(d),
                    Some(prev) if prev == d => {}
                    Some(_) => return None,
                }
            }
            // Coupled indices: distance not per-level decomposable.
            _ => return None,
        }
    }
    // Levels the access ignores impose no constraint; distance 0 is the
    // conservative in-block choice.
    Some(dist.into_iter().map(|d| d.unwrap_or(0)).collect())
}

/// K003: every op in every statement must be in the PE's repertoire.
fn lint_ops(kernel: &Kernel, options: &LintOptions, out: &mut Vec<Lint>) {
    for (sidx, stmt) in kernel.stmts().iter().enumerate() {
        let mut ops = Vec::new();
        collect_ops(&stmt.value, &mut ops);
        for op in ops {
            if !options.supported_ops.contains(&op) {
                out.push(Lint {
                    code: LintCode::K003,
                    severity: LintSeverity::Error,
                    message: format!(
                        "statement {sidx} uses `{}`, which the PE ALU does not support",
                        op.mnemonic()
                    ),
                    stmt: Some(StmtId::from_index(sidx)),
                    read: None,
                });
            }
        }
    }
}

fn collect_ops(expr: &crate::ir::Expr, out: &mut Vec<OpKind>) {
    if let crate::ir::Expr::Binary(op, l, r) = expr {
        out.push(*op);
        collect_ops(l, out);
        collect_ops(r, out);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::ir::{AffineExpr, ArrayRef, Expr, KernelBuilder};
    use crate::suite;

    #[test]
    fn suite_kernels_are_clean() {
        for kernel in suite::all() {
            let lints = lint_kernel(&kernel, &LintOptions::default());
            assert!(
                lints.iter().all(|l| l.severity != LintSeverity::Error),
                "{}: {:?}",
                kernel.name(),
                lints
            );
            assert!(lints_clean(&kernel), "{}", kernel.name());
        }
    }

    #[test]
    fn non_uniform_unrouted_read_is_k001() {
        // c[i][j] = c[i][j] + c[j][i]: the transposed read of the written
        // array has no constant dependence distance.
        let mut b = KernelBuilder::new("transpose-acc", 2);
        let c = b.array("c", 2);
        let ij = vec![AffineExpr::var(0, 2), AffineExpr::var(1, 2)];
        let ji = vec![AffineExpr::var(1, 2), AffineExpr::var(0, 2)];
        b.stmt(
            ArrayRef::new(c, ij.clone()),
            Expr::binary(
                OpKind::Add,
                Expr::Read(ArrayRef::new(c, ij)),
                Expr::Read(ArrayRef::new(c, ji)),
            ),
        );
        let kernel = b.build().unwrap();
        let lints = lint_kernel(&kernel, &LintOptions::default());
        let k001: Vec<_> = lints.iter().filter(|l| l.code == LintCode::K001).collect();
        assert_eq!(k001.len(), 1, "{lints:?}");
        assert_eq!(k001[0].severity, LintSeverity::Error);
        assert_eq!(k001[0].read, Some(1), "the transposed read, not the uniform one");
        assert!(!lints_clean(&kernel));
    }

    #[test]
    fn mem_routing_silences_k001() {
        // Floyd–Warshall's pivot reads are non-uniform but memory-routed.
        let fw = suite::floyd_warshall();
        let lints = lint_kernel(&fw, &LintOptions::default());
        assert!(lints.iter().all(|l| l.code != LintCode::K001), "{lints:?}");
    }

    #[test]
    fn oversized_distance_is_k002() {
        // a[i][j] = a[i-5][j] + 1 under default extent 4: distance 5 never
        // stays inside the block.
        let mut b = KernelBuilder::new("far-dep", 2);
        let a = b.array("a", 2);
        b.stmt(
            ArrayRef::new(a, vec![AffineExpr::var(0, 2), AffineExpr::var(1, 2)]),
            Expr::binary(
                OpKind::Add,
                Expr::Read(ArrayRef::new(
                    a,
                    vec![AffineExpr::new(vec![1, 0], -5), AffineExpr::var(1, 2)],
                )),
                Expr::Const(1),
            ),
        );
        let kernel = b.build().unwrap();
        let lints = lint_kernel(&kernel, &LintOptions::default());
        assert!(lints.iter().any(|l| l.code == LintCode::K002), "{lints:?}");
        // Warnings do not fail the clean gate.
        assert!(lints_clean(&kernel));
        // A big enough block swallows the distance.
        let wide = LintOptions { block: Some(vec![8, 8]), ..LintOptions::default() };
        assert!(lint_kernel(&kernel, &wide).iter().all(|l| l.code != LintCode::K002));
    }

    #[test]
    fn unsupported_op_is_k003() {
        let kernel = suite::gemm();
        let no_mul =
            LintOptions { supported_ops: vec![OpKind::Add, OpKind::Sub], ..Default::default() };
        let lints = lint_kernel(&kernel, &no_mul);
        assert!(
            lints.iter().any(|l| l.code == LintCode::K003 && l.severity == LintSeverity::Error),
            "{lints:?}"
        );
    }
}
