//! A textual front-end for the kernel IR.
//!
//! The paper's compiler "accepts the C source code of the target kernel as
//! input". This module provides the equivalent user-facing surface for the
//! affine IR: a small kernel DSL with loop iterators, affine array accesses
//! and arithmetic expressions.
//!
//! # Grammar
//!
//! ```text
//! kernel   := "kernel" IDENT "(" IDENT ("," IDENT)* ")" "{" stmt+ "}"
//! stmt     := access "=" expr ";"
//! expr     := term  (("+" | "-") term)*
//! term     := factor ("*" factor)*
//! factor   := "min" "(" expr "," expr ")"
//!           | "max" "(" expr "," expr ")"
//!           | "@mem"? access
//!           | INT
//!           | "(" expr ")"
//! access   := IDENT ("[" affine "]")+
//! affine   := aterm (("+" | "-") aterm)*
//! aterm    := INT ("*" IDENT)? | IDENT
//! ```
//!
//! `@mem` marks a read as memory-routed (see
//! [`Kernel::is_mem_routed`](crate::Kernel::is_mem_routed)) — used for
//! Floyd–Warshall's pivot reads.
//!
//! # Example
//!
//! ```
//! use himap_kernels::parse_kernel;
//!
//! let gemm = parse_kernel(
//!     "kernel gemm(i, j, k) {
//!          C[i][j] = C[i][j] + A[i][k] * B[k][j];
//!      }",
//! )?;
//! assert_eq!(gemm.dims(), 3);
//! assert_eq!(gemm.compute_ops_per_iteration(), 2);
//! # Ok::<(), himap_kernels::ParseError>(())
//! ```

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::ir::{AffineExpr, ArrayId, ArrayRef, Expr, Kernel, KernelBuilder, OpKind};

/// Error produced by [`parse_kernel`], with a byte offset into the source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending token.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.message)
    }
}

impl Error for ParseError {}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Sym(char),
    AtMem,
}

struct Lexer {
    toks: Vec<(usize, Tok)>,
    pos: usize,
}

fn lex(src: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
        } else if c == '#' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
        } else if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            toks.push((start, Tok::Ident(src[start..i].to_string())));
        } else if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            let value = src[start..i]
                .parse()
                .map_err(|_| ParseError { at: start, message: "integer overflow".into() })?;
            toks.push((start, Tok::Int(value)));
        } else if c == '@' {
            let start = i;
            if src[i..].starts_with("@mem") {
                i += 4;
                toks.push((start, Tok::AtMem));
            } else {
                return Err(ParseError { at: i, message: "unknown annotation".into() });
            }
        } else if "(){}[],;=+-*".contains(c) {
            toks.push((i, Tok::Sym(c)));
            i += 1;
        } else {
            return Err(ParseError { at: i, message: format!("unexpected character `{c}`") });
        }
    }
    Ok(toks)
}

impl Lexer {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn at(&self) -> usize {
        self.toks.get(self.pos).map_or(usize::MAX, |(a, _)| *a)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn expect_sym(&mut self, c: char) -> Result<(), ParseError> {
        let at = self.at();
        match self.next() {
            Some(Tok::Sym(s)) if s == c => Ok(()),
            other => Err(ParseError { at, message: format!("expected `{c}`, found {other:?}") }),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        let at = self.at();
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => {
                Err(ParseError { at, message: format!("expected identifier, found {other:?}") })
            }
        }
    }

    fn eat_sym(&mut self, c: char) -> bool {
        if self.peek() == Some(&Tok::Sym(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }
}

struct Parser {
    lexer: Lexer,
    iters: Vec<String>,
    arrays: HashMap<String, (ArrayId, usize)>,
    builder: KernelBuilder,
    /// Memory-routing marks collected per statement: read indices.
    mem_reads: Vec<Vec<u8>>,
    /// Read counter within the current statement.
    read_counter: u8,
    current_mem_reads: Vec<u8>,
}

/// Parses a kernel definition from the DSL (see the module docs for the
/// grammar and an example).
///
/// # Errors
///
/// Returns a [`ParseError`] with a byte offset on malformed input, or if the
/// resulting kernel fails IR validation.
pub fn parse_kernel(src: &str) -> Result<Kernel, ParseError> {
    let lexer = Lexer { toks: lex(src)?, pos: 0 };
    let mut p = Parser {
        lexer,
        iters: Vec::new(),
        arrays: HashMap::new(),
        builder: KernelBuilder::new("", 0),
        mem_reads: Vec::new(),
        read_counter: 0,
        current_mem_reads: Vec::new(),
    };
    p.kernel()
}

impl Parser {
    fn kernel(&mut self) -> Result<Kernel, ParseError> {
        let at = self.lexer.at();
        let kw = self.lexer.expect_ident()?;
        if kw != "kernel" {
            return Err(ParseError { at, message: "expected `kernel`".into() });
        }
        let name = self.lexer.expect_ident()?;
        self.lexer.expect_sym('(')?;
        loop {
            self.iters.push(self.lexer.expect_ident()?);
            if !self.lexer.eat_sym(',') {
                break;
            }
        }
        self.lexer.expect_sym(')')?;
        self.builder = KernelBuilder::new(name, self.iters.len());
        self.lexer.expect_sym('{')?;
        while !self.lexer.eat_sym('}') {
            self.stmt()?;
        }
        if let Some(t) = self.lexer.peek() {
            return Err(ParseError {
                at: self.lexer.at(),
                message: format!("trailing input after kernel body: {t:?}"),
            });
        }
        // Apply memory-routing marks.
        let mem_reads = std::mem::take(&mut self.mem_reads);
        let mut builder = std::mem::replace(&mut self.builder, KernelBuilder::new("", 0));
        for (sid, reads) in mem_reads.into_iter().enumerate() {
            for r in reads {
                builder.route_read_via_memory(crate::ir::StmtId::from_index(sid), r);
            }
        }
        builder.build().map_err(|e| ParseError { at: 0, message: e.to_string() })
    }

    fn stmt(&mut self) -> Result<(), ParseError> {
        self.read_counter = 0;
        self.current_mem_reads = Vec::new();
        let target = self.access()?;
        self.lexer.expect_sym('=')?;
        let value = self.expr()?;
        self.lexer.expect_sym(';')?;
        self.builder.stmt(target, value);
        let marks = std::mem::take(&mut self.current_mem_reads);
        self.mem_reads.push(marks);
        Ok(())
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.term()?;
        loop {
            if self.lexer.eat_sym('+') {
                let rhs = self.term()?;
                lhs = Expr::binary(OpKind::Add, lhs, rhs);
            } else if self.lexer.eat_sym('-') {
                let rhs = self.term()?;
                lhs = Expr::binary(OpKind::Sub, lhs, rhs);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.factor()?;
        while self.lexer.eat_sym('*') {
            let rhs = self.factor()?;
            lhs = Expr::binary(OpKind::Mul, lhs, rhs);
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<Expr, ParseError> {
        let at = self.lexer.at();
        match self.lexer.peek().cloned() {
            Some(Tok::AtMem) => {
                self.lexer.next();
                self.current_mem_reads.push(self.read_counter);
                let access = self.access()?;
                self.read_counter += 1;
                Ok(Expr::Read(access))
            }
            Some(Tok::Ident(name)) if name == "min" || name == "max" => {
                self.lexer.next();
                let op = if name == "min" { OpKind::Min } else { OpKind::Max };
                self.lexer.expect_sym('(')?;
                let a = self.expr()?;
                self.lexer.expect_sym(',')?;
                let b = self.expr()?;
                self.lexer.expect_sym(')')?;
                Ok(Expr::binary(op, a, b))
            }
            Some(Tok::Ident(_)) => {
                let access = self.access()?;
                self.read_counter += 1;
                Ok(Expr::Read(access))
            }
            Some(Tok::Int(v)) => {
                self.lexer.next();
                Ok(Expr::Const(v))
            }
            Some(Tok::Sym('(')) => {
                self.lexer.next();
                let e = self.expr()?;
                self.lexer.expect_sym(')')?;
                Ok(e)
            }
            other => {
                Err(ParseError { at, message: format!("expected expression, found {other:?}") })
            }
        }
    }

    fn access(&mut self) -> Result<ArrayRef, ParseError> {
        let at = self.lexer.at();
        let name = self.lexer.expect_ident()?;
        if self.iters.contains(&name) {
            return Err(ParseError {
                at,
                message: format!("`{name}` is a loop iterator, not an array"),
            });
        }
        let mut indices = Vec::new();
        while self.lexer.eat_sym('[') {
            indices.push(self.affine()?);
            self.lexer.expect_sym(']')?;
        }
        if indices.is_empty() {
            return Err(ParseError { at, message: format!("array `{name}` used without index") });
        }
        let rank = indices.len();
        let id = match self.arrays.get(&name) {
            Some(&(id, declared_rank)) => {
                if declared_rank != rank {
                    return Err(ParseError {
                        at,
                        message: format!(
                            "array `{name}` used with rank {rank} but previously rank {declared_rank}"
                        ),
                    });
                }
                id
            }
            None => {
                let id = self.builder.array(name.clone(), rank);
                self.arrays.insert(name, (id, rank));
                id
            }
        };
        Ok(ArrayRef::new(id, indices))
    }

    /// Affine index expression: signed sum of `INT`, `IDENT`, `INT*IDENT`.
    fn affine(&mut self) -> Result<AffineExpr, ParseError> {
        let dims = self.iters.len();
        let mut coeffs = vec![0i64; dims];
        let mut constant = 0i64;
        let mut sign = 1i64;
        loop {
            let at = self.lexer.at();
            match self.lexer.next() {
                Some(Tok::Int(v)) => {
                    if self.lexer.eat_sym('*') {
                        let ident = self.lexer.expect_ident()?;
                        let level = self.iter_level(&ident, at)?;
                        coeffs[level] += sign * v;
                    } else {
                        constant += sign * v;
                    }
                }
                Some(Tok::Ident(ident)) => {
                    let level = self.iter_level(&ident, at)?;
                    coeffs[level] += sign;
                }
                other => {
                    return Err(ParseError {
                        at,
                        message: format!("expected affine term, found {other:?}"),
                    })
                }
            }
            if self.lexer.eat_sym('+') {
                sign = 1;
            } else if self.lexer.eat_sym('-') {
                sign = -1;
            } else {
                return Ok(AffineExpr::new(coeffs, constant));
            }
        }
    }

    fn iter_level(&self, ident: &str, at: usize) -> Result<usize, ParseError> {
        self.iters
            .iter()
            .position(|i| i == ident)
            .ok_or_else(|| ParseError { at, message: format!("unknown iterator `{ident}`") })
    }
}

#[allow(clippy::unwrap_used, clippy::expect_used)]
#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::classify;
    use crate::suite;

    #[test]
    fn parses_gemm() {
        let k = parse_kernel(
            "kernel gemm(i, j, k) {
                 C[i][j] = C[i][j] + A[i][k] * B[k][j];
             }",
        )
        .expect("parses");
        assert_eq!(k.name(), "gemm");
        assert_eq!(k.dims(), 3);
        assert_eq!(k.compute_ops_per_iteration(), 2);
        assert_eq!(classify(&k), classify(&suite::gemm()));
    }

    #[test]
    fn parses_bicg_with_two_statements() {
        let k = parse_kernel(
            "kernel bicg(i, j) {
                 s[j] = s[j] + r[i] * A[i][j];
                 q[i] = q[i] + A[i][j] * p[j];
             }",
        )
        .expect("parses");
        assert_eq!(k.stmts().len(), 2);
        assert_eq!(k.compute_ops_per_iteration(), 4);
        assert_eq!(classify(&k), classify(&suite::bicg()));
    }

    #[test]
    fn parses_floyd_warshall_with_mem_annotations() {
        let k = parse_kernel(
            "kernel fw(k, i, j) {
                 D[k+1][i][j] = min(D[k][i][j], @mem D[k][i][k] + @mem D[k][k][j]);
             }",
        )
        .expect("parses");
        assert_eq!(k.compute_ops_per_iteration(), 2);
        // Reads in evaluation order: 0 = D[k][i][j], 1 and 2 = pivots.
        let stmt = crate::ir::StmtId::from_index(0);
        assert!(!k.is_mem_routed(stmt, 0));
        assert!(k.is_mem_routed(stmt, 1));
        assert!(k.is_mem_routed(stmt, 2));
    }

    #[test]
    fn affine_indices_with_offsets_and_coefficients() {
        let k = parse_kernel(
            "kernel s(i, j) {
                 y[i][j] = x[2*i+1][j-1] + 3;
             }",
        )
        .expect("parses");
        let reads = k.stmts()[0].value.reads();
        assert_eq!(reads[0].indices[0], AffineExpr::new(vec![2, 0], 1));
        assert_eq!(reads[0].indices[1], AffineExpr::new(vec![0, 1], -1));
    }

    #[test]
    fn comments_and_whitespace() {
        let k = parse_kernel(
            "# matrix-vector accumulate\n\
             kernel mv(i, j) {\n\
                 y[i] = y[i] + A[i][j] * x[j]; # MAC\n\
             }",
        )
        .expect("parses");
        assert_eq!(k.name(), "mv");
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_kernel("kernel bad(i) { y[i] = ; }").unwrap_err();
        assert!(err.at > 0);
        assert!(err.message.contains("expected expression"));
        let err = parse_kernel("kernel bad(i) { y[i] = x[q]; }").unwrap_err();
        assert!(err.message.contains("unknown iterator"));
        let err = parse_kernel("kernel bad(i) { y[i] = y[i][i] + 1; }").unwrap_err();
        assert!(err.message.contains("rank"));
    }

    #[test]
    fn iterator_cannot_be_read_as_array() {
        let err = parse_kernel("kernel bad(i) { y[i] = i + 1; }").unwrap_err();
        assert!(err.message.contains("loop iterator"));
    }

    #[test]
    fn parsed_kernels_match_suite_dfgs() {
        // The parsed GEMM produces the same unrolled dependence structure as
        // the programmatic one.
        let parsed = parse_kernel(
            "kernel gemm(i, j, k) {
                 C[i][j] = C[i][j] + A[i][k] * B[k][j];
             }",
        )
        .expect("parses");
        let a = crate::DepAnalysis::of(&parsed);
        let b = crate::DepAnalysis::of(&suite::gemm());
        assert_eq!(a.flow_distances(), b.flow_distances());
        assert_eq!(a.carried_levels, b.carried_levels);
    }
}
