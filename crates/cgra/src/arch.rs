//! Static CGRA architecture description.

use std::error::Error;
use std::fmt;

/// Coordinates of one processing element: `x` is the row (the paper's
/// "north–south" axis, north = decreasing `x`), `y` the column (west–east).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeId {
    /// Row, `0 ≤ x < rows`.
    pub x: u16,
    /// Column, `0 ≤ y < cols`.
    pub y: u16,
}

impl PeId {
    /// Creates a PE coordinate.
    pub fn new(x: usize, y: usize) -> Self {
        PeId { x: x as u16, y: y as u16 }
    }
}

impl fmt::Debug for PeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pe({},{})", self.x, self.y)
    }
}

impl fmt::Display for PeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// Mesh link directions out of a PE.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Dir {
    /// Toward row `x - 1`.
    North,
    /// Toward column `y + 1`.
    East,
    /// Toward row `x + 1`.
    South,
    /// Toward column `y - 1`.
    West,
}

/// All four mesh directions, in a fixed deterministic order.
pub const ALL_DIRS: [Dir; 4] = [Dir::North, Dir::East, Dir::South, Dir::West];

impl Dir {
    /// The `(dx, dy)` displacement of this direction.
    pub fn delta(self) -> (i32, i32) {
        match self {
            Dir::North => (-1, 0),
            Dir::East => (0, 1),
            Dir::South => (1, 0),
            Dir::West => (0, -1),
        }
    }

    /// The opposite direction.
    pub fn opposite(self) -> Dir {
        match self {
            Dir::North => Dir::South,
            Dir::East => Dir::West,
            Dir::South => Dir::North,
            Dir::West => Dir::East,
        }
    }

    /// Dense index `0..4` (N, E, S, W).
    pub fn index(self) -> usize {
        match self {
            Dir::North => 0,
            Dir::East => 1,
            Dir::South => 2,
            Dir::West => 3,
        }
    }

    /// Inverse of [`Dir::index`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= 4`.
    pub fn from_index(index: usize) -> Dir {
        ALL_DIRS[index]
    }
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Dir::North => "N",
            Dir::East => "E",
            Dir::South => "S",
            Dir::West => "W",
        };
        f.write_str(s)
    }
}

/// Static description of a CGRA (§VI of the paper).
///
/// Defaults mirror the paper's evaluation platform: a register file with four
/// registers, a 32-entry configuration memory, a 64-word local data memory
/// per PE and a 510 MHz clock on a 40 nm process.
#[derive(Clone, Debug, PartialEq)]
pub struct CgraSpec {
    /// Number of PE rows.
    pub rows: usize,
    /// Number of PE columns.
    pub cols: usize,
    /// Registers per PE register file.
    pub rf_size: usize,
    /// Instructions held by each PE's configuration memory.
    pub config_mem_depth: usize,
    /// Words held by each PE's local data memory.
    pub data_mem_words: usize,
    /// Register-file read/write ports per PE (§VI: "two r/w ports").
    pub rf_ports: usize,
    /// Local data-memory read ports per PE per cycle.
    pub mem_ports: usize,
    /// Clock frequency in MHz.
    pub freq_mhz: f64,
    /// Faulted resources of this fabric instance; empty (the default) for a
    /// pristine array. Part of the spec's identity: two specs with different
    /// fault maps compare unequal, so per-`(spec, II)` caches key correctly.
    pub faults: crate::capability::CapabilityMap,
}

/// Error constructing a [`CgraSpec`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// Array dimensions must be at least 1×1.
    EmptyArray,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::EmptyArray => write!(f, "CGRA array must have at least one PE"),
        }
    }
}

impl Error for SpecError {}

impl CgraSpec {
    /// Creates a `rows × cols` CGRA with the paper's default PE parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::EmptyArray`] if either dimension is zero.
    pub fn mesh(rows: usize, cols: usize) -> Result<Self, SpecError> {
        if rows == 0 || cols == 0 {
            return Err(SpecError::EmptyArray);
        }
        Ok(CgraSpec {
            rows,
            cols,
            rf_size: 4,
            config_mem_depth: 32,
            data_mem_words: 64,
            rf_ports: 2,
            mem_ports: 2,
            freq_mhz: 510.0,
            faults: crate::capability::CapabilityMap::default(),
        })
    }

    /// This spec with `faults` installed (builder-style convenience).
    #[must_use]
    pub fn with_faults(mut self, faults: crate::capability::CapabilityMap) -> Self {
        self.faults = faults;
        self
    }

    /// This spec with an empty fault map — the idealized fabric sub-CGRA
    /// probing and relative placement work against, since relative mappings
    /// are position-agnostic and replicated only onto healthy tiles.
    pub fn fault_free(&self) -> Self {
        CgraSpec { faults: crate::capability::CapabilityMap::default(), ..self.clone() }
    }

    /// `true` if `pe` lies inside the array and is not a dead PE.
    pub fn healthy(&self, pe: PeId) -> bool {
        self.contains(pe) && !self.faults.pe_dead(pe)
    }

    /// Creates a square `c × c` CGRA with default PE parameters.
    ///
    /// # Panics
    ///
    /// Panics if `c == 0`.
    // The panic is part of the documented contract.
    #[allow(clippy::expect_used)]
    pub fn square(c: usize) -> Self {
        Self::mesh(c, c).expect("square CGRA size must be non-zero")
    }

    /// Total number of PEs.
    pub fn pe_count(&self) -> usize {
        self.rows * self.cols
    }

    /// `true` if `pe` lies inside the array.
    pub fn contains(&self, pe: PeId) -> bool {
        (pe.x as usize) < self.rows && (pe.y as usize) < self.cols
    }

    /// The neighbour of `pe` in direction `dir`, or `None` at the array edge.
    pub fn neighbor(&self, pe: PeId, dir: Dir) -> Option<PeId> {
        let (dx, dy) = dir.delta();
        let nx = pe.x as i32 + dx;
        let ny = pe.y as i32 + dy;
        if nx < 0 || ny < 0 || nx as usize >= self.rows || ny as usize >= self.cols {
            None
        } else {
            Some(PeId { x: nx as u16, y: ny as u16 })
        }
    }

    /// Iterates over all PEs in row-major order.
    pub fn pes(&self) -> impl Iterator<Item = PeId> + '_ {
        (0..self.rows).flat_map(move |x| (0..self.cols).map(move |y| PeId::new(x, y)))
    }

    /// Manhattan distance between two PEs (mesh hop count lower bound).
    pub fn distance(&self, a: PeId, b: PeId) -> usize {
        let dx = (a.x as i32 - b.x as i32).unsigned_abs() as usize;
        let dy = (a.y as i32 - b.y as i32).unsigned_abs() as usize;
        dx + dy
    }
}

#[allow(clippy::unwrap_used, clippy::expect_used)]
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_validation() {
        assert!(CgraSpec::mesh(0, 4).is_err());
        assert!(CgraSpec::mesh(4, 0).is_err());
        let spec = CgraSpec::mesh(8, 1).unwrap();
        assert_eq!(spec.pe_count(), 8);
    }

    #[test]
    fn square_defaults_match_paper() {
        let spec = CgraSpec::square(4);
        assert_eq!(spec.rows, 4);
        assert_eq!(spec.cols, 4);
        assert_eq!(spec.rf_size, 4);
        assert_eq!(spec.config_mem_depth, 32);
        assert_eq!(spec.data_mem_words, 64);
        assert_eq!(spec.freq_mhz, 510.0);
    }

    #[test]
    fn neighbors_and_edges() {
        let spec = CgraSpec::square(3);
        let corner = PeId::new(0, 0);
        assert_eq!(spec.neighbor(corner, Dir::North), None);
        assert_eq!(spec.neighbor(corner, Dir::West), None);
        assert_eq!(spec.neighbor(corner, Dir::South), Some(PeId::new(1, 0)));
        assert_eq!(spec.neighbor(corner, Dir::East), Some(PeId::new(0, 1)));
        let center = PeId::new(1, 1);
        for dir in ALL_DIRS {
            let n = spec.neighbor(center, dir).expect("center has all neighbors");
            assert_eq!(spec.neighbor(n, dir.opposite()), Some(center));
        }
    }

    #[test]
    fn dir_roundtrip() {
        for dir in ALL_DIRS {
            assert_eq!(Dir::from_index(dir.index()), dir);
            assert_eq!(dir.opposite().opposite(), dir);
            let (dx, dy) = dir.delta();
            let (ox, oy) = dir.opposite().delta();
            assert_eq!((dx + ox, dy + oy), (0, 0));
        }
    }

    #[test]
    fn pes_row_major() {
        let spec = CgraSpec::mesh(2, 3).unwrap();
        let pes: Vec<_> = spec.pes().collect();
        assert_eq!(pes.len(), 6);
        assert_eq!(pes[0], PeId::new(0, 0));
        assert_eq!(pes[1], PeId::new(0, 1));
        assert_eq!(pes[3], PeId::new(1, 0));
    }

    #[test]
    fn manhattan_distance() {
        let spec = CgraSpec::square(8);
        assert_eq!(spec.distance(PeId::new(0, 0), PeId::new(3, 4)), 7);
        assert_eq!(spec.distance(PeId::new(2, 2), PeId::new(2, 2)), 0);
    }

    #[test]
    fn contains_checks_bounds() {
        let spec = CgraSpec::mesh(2, 2).unwrap();
        assert!(spec.contains(PeId::new(1, 1)));
        assert!(!spec.contains(PeId::new(2, 0)));
        assert!(!spec.contains(PeId::new(0, 2)));
    }
}
