//! Capability model: what each PE of a physical CGRA instance can do.
//!
//! A [`CapabilityMap`] assigns every PE a set of op-classes ([`OpClass`]:
//! `alu` / `mul` / `mem` / `route`) on top of the fault state inherited from
//! the original fault model — dead PEs, severed directional mesh links,
//! disabled register-file slots and disabled local data-memory banks. A
//! pristine homogeneous fabric is the default: every PE supports every
//! class and nothing is faulted. Faults embed into the capability lattice
//! as the "zero capabilities" special case (a dead PE supports no class at
//! all), so the fault machinery is a strict subset of the capability
//! machinery and `FaultMap` survives as a legacy alias.
//!
//! The map lives on [`CgraSpec`], so every consumer of the architecture
//! description (MRRG enumeration, the dense [`MrrgIndex`](crate::MrrgIndex),
//! VSA clustering, the verifier, the simulator) sees the same masked
//! resource set: a resource a PE is not capable of simply does not exist in
//! the routing graph, and the mapper routes around it without any
//! capability-specific logic of its own. Per-*operation* legality (a `mul`
//! on an ALU-only PE) cannot be expressed as a graph mask — FU nodes are
//! op-agnostic — so placement layers consult [`CapabilityMap::supports_op`]
//! directly.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use himap_kernels::OpKind;

use crate::arch::{CgraSpec, Dir, PeId};
use crate::mrrg::{RKind, RNode};

/// Operation classes a PE may provide.
///
/// The classes form a flat lattice under set inclusion: a PE's capability is
/// any subset of `{alu, mul, mem}` (plus `route`, which every live PE
/// provides — the crossbar and register file always switch). A fully dead
/// PE is the bottom element (no classes, not even `route`); the
/// homogeneous default is the top element.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpClass {
    /// Plain ALU arithmetic (`add`, `sub`, `min`, `max`).
    Alu,
    /// Multiplication.
    Mul,
    /// Local data-memory bank access (live-in loads, store retirement).
    Mem,
    /// Pass-through routing only (crossbar, wires, register file).
    Route,
}

/// All op-classes, in a fixed deterministic order.
pub const ALL_OP_CLASSES: [OpClass; 4] = [OpClass::Alu, OpClass::Mul, OpClass::Mem, OpClass::Route];

/// Bit for [`OpClass::Alu`] in a packed class mask.
const ALU_BIT: u8 = 1 << 0;
/// Bit for [`OpClass::Mul`].
const MUL_BIT: u8 = 1 << 1;
/// Bit for [`OpClass::Mem`].
const MEM_BIT: u8 = 1 << 2;
/// The homogeneous default: every class supported.
const FULL_MASK: u8 = ALU_BIT | MUL_BIT | MEM_BIT;
/// Classes that make a PE's functional unit usable at all.
const FU_MASK: u8 = ALU_BIT | MUL_BIT;

impl OpClass {
    /// The class an ALU operation belongs to.
    pub fn of(op: OpKind) -> OpClass {
        match op {
            OpKind::Mul => OpClass::Mul,
            OpKind::Add | OpKind::Sub | OpKind::Min | OpKind::Max => OpClass::Alu,
        }
    }

    /// Short lowercase mnemonic (`alu`, `mul`, `mem`, `route`).
    pub fn as_str(self) -> &'static str {
        match self {
            OpClass::Alu => "alu",
            OpClass::Mul => "mul",
            OpClass::Mem => "mem",
            OpClass::Route => "route",
        }
    }

    /// The class's bit in a packed mask (`Route` carries no bit: every live
    /// PE routes).
    fn bit(self) -> u8 {
        match self {
            OpClass::Alu => ALU_BIT,
            OpClass::Mul => MUL_BIT,
            OpClass::Mem => MEM_BIT,
            OpClass::Route => 0,
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Packs a class list into a mask.
fn mask_of(classes: &[OpClass]) -> u8 {
    classes.iter().fold(0u8, |m, c| m | c.bit())
}

/// The per-PE capability assignment (and faulted resources) of one CGRA
/// instance.
///
/// An empty map (the [`Default`]) describes a pristine homogeneous fabric
/// and is free: MRRG construction short-circuits every mask check behind
/// one branch. Ordered collections keep the map's `Debug`/iteration order —
/// and therefore every derived artifact — deterministic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CapabilityMap {
    /// PEs that are entirely unusable (ALU, RF, crossbar and memory) — the
    /// zero element of the capability lattice.
    dead_pes: BTreeSet<PeId>,
    /// Severed directional links, keyed by the *source* PE and the outgoing
    /// direction. Severing `(pe, East)` kills the wire from `pe` to its east
    /// neighbour only; the opposite wire stays usable.
    severed_links: BTreeSet<(PeId, Dir)>,
    /// Disabled register-file slots `(pe, register index)`.
    disabled_regs: BTreeSet<(PeId, usize)>,
    /// PEs whose local data-memory bank is disabled (compute still works).
    disabled_mems: BTreeSet<PeId>,
    /// Supported-class masks of heterogeneous PEs. Absent means the
    /// homogeneous default ([`FULL_MASK`]); entries are normalized so a
    /// full mask is never stored.
    restricted: BTreeMap<PeId, u8>,
}

/// Legacy name of [`CapabilityMap`].
///
/// **Deprecated alias** kept so fault-era call sites compile unchanged: a
/// map built exclusively through the fault builders (`kill_pe`,
/// `sever_link`, `disable_reg`, `disable_mem`) behaves bit-identically to
/// the original `FaultMap` — same `masks()` predicate, same `Display`, same
/// equality — because faults are the zero-capability corner of the lattice.
pub type FaultMap = CapabilityMap;

impl CapabilityMap {
    /// An empty (pristine, homogeneous) map.
    pub fn new() -> Self {
        CapabilityMap::default()
    }

    /// Marks `pe` as entirely dead.
    pub fn kill_pe(&mut self, pe: PeId) -> &mut Self {
        self.dead_pes.insert(pe);
        self
    }

    /// Severs the directional link leaving `pe` toward `dir`.
    pub fn sever_link(&mut self, pe: PeId, dir: Dir) -> &mut Self {
        self.severed_links.insert((pe, dir));
        self
    }

    /// Disables register slot `reg` of `pe`'s register file.
    pub fn disable_reg(&mut self, pe: PeId, reg: usize) -> &mut Self {
        self.disabled_regs.insert((pe, reg));
        self
    }

    /// Disables `pe`'s local data-memory bank.
    pub fn disable_mem(&mut self, pe: PeId) -> &mut Self {
        self.disabled_mems.insert(pe);
        self
    }

    /// Sets `pe`'s supported classes to exactly `classes` (plus implicit
    /// routing). An empty list or `&[OpClass::Route]` makes the PE
    /// route-only; listing every class restores the homogeneous default.
    pub fn set_classes(&mut self, pe: PeId, classes: &[OpClass]) -> &mut Self {
        self.store_mask(pe, mask_of(classes));
        self
    }

    /// Intersects `pe`'s supported classes with `classes` — the composable
    /// form of [`CapabilityMap::set_classes`], so independent restrictions
    /// (corner multipliers, edge-only memory) stack.
    pub fn restrict(&mut self, pe: PeId, classes: &[OpClass]) -> &mut Self {
        let mask = self.class_mask(pe) & mask_of(classes);
        self.store_mask(pe, mask);
        self
    }

    /// Normalized mask storage: the homogeneous default is never kept as an
    /// entry, so `is_empty`/`PartialEq` stay meaningful.
    fn store_mask(&mut self, pe: PeId, mask: u8) {
        if mask == FULL_MASK {
            self.restricted.remove(&pe);
        } else {
            self.restricted.insert(pe, mask);
        }
    }

    /// The packed supported-class mask of `pe` (ignores deadness).
    fn class_mask(&self, pe: PeId) -> u8 {
        self.restricted.get(&pe).copied().unwrap_or(FULL_MASK)
    }

    /// `true` when no resource is faulted and no PE is capability-restricted
    /// (the fast path everywhere).
    pub fn is_empty(&self) -> bool {
        self.dead_pes.is_empty()
            && self.severed_links.is_empty()
            && self.disabled_regs.is_empty()
            && self.disabled_mems.is_empty()
            && self.restricted.is_empty()
    }

    /// `true` when at least one whole PE is dead (the only fault class that
    /// forces VSA cropping — all others are routed around in place).
    pub fn has_dead_pes(&self) -> bool {
        !self.dead_pes.is_empty()
    }

    /// Number of faulted or restricted resources across all classes.
    pub fn len(&self) -> usize {
        self.dead_pes.len()
            + self.severed_links.len()
            + self.disabled_regs.len()
            + self.disabled_mems.len()
            + self.restricted.len()
    }

    /// Whether `pe` is dead.
    pub fn pe_dead(&self, pe: PeId) -> bool {
        self.dead_pes.contains(&pe)
    }

    /// Whether the directional link leaving `pe` toward `dir` is severed.
    pub fn link_severed(&self, pe: PeId, dir: Dir) -> bool {
        self.severed_links.contains(&(pe, dir))
    }

    /// Whether register slot `reg` of `pe` is disabled.
    pub fn reg_disabled(&self, pe: PeId, reg: usize) -> bool {
        self.disabled_regs.contains(&(pe, reg))
    }

    /// Whether `pe`'s data-memory bank is unusable — disabled as a fault or
    /// absent from the PE's capability classes. The two embeddings are
    /// deliberately indistinguishable here, so every bank consumer (router
    /// memory sources, baselines, the fabric survey) is capability-aware
    /// through the one predicate it already calls.
    pub fn mem_disabled(&self, pe: PeId) -> bool {
        self.disabled_mems.contains(&pe) || self.class_mask(pe) & MEM_BIT == 0
    }

    /// The dead PEs in deterministic (row-major) order.
    pub fn dead_pes(&self) -> impl Iterator<Item = PeId> + '_ {
        self.dead_pes.iter().copied()
    }

    /// The capability-restricted PEs in deterministic order.
    pub fn restricted_pes(&self) -> impl Iterator<Item = PeId> + '_ {
        self.restricted.keys().copied()
    }

    /// Whether `pe` provides `class`. Dead PEs provide nothing; every live
    /// PE provides [`OpClass::Route`]; [`OpClass::Mem`] folds in the
    /// disabled-bank fault set.
    pub fn supports(&self, pe: PeId, class: OpClass) -> bool {
        if self.pe_dead(pe) {
            return false;
        }
        match class {
            OpClass::Route => true,
            OpClass::Mem => !self.mem_disabled(pe),
            OpClass::Alu | OpClass::Mul => self.class_mask(pe) & class.bit() != 0,
        }
    }

    /// Whether `pe` can execute the ALU operation `op`.
    pub fn supports_op(&self, pe: PeId, op: OpKind) -> bool {
        self.supports(pe, OpClass::of(op))
    }

    /// Whether `pe`'s functional unit is usable at all — `false` for dead
    /// and for route-only PEs, whose `Fu`/`Out` resources are masked out of
    /// the MRRG entirely.
    pub fn fu_capable(&self, pe: PeId) -> bool {
        !self.pe_dead(pe) && self.class_mask(pe) & FU_MASK != 0
    }

    /// Whether this map masks `node` out of the MRRG of `spec` — the single
    /// source of truth shared by enumeration, the dense index, the verifier
    /// and the simulator.
    ///
    /// A node is masked when its owning PE is dead, plus per kind:
    ///
    /// * `Fu`/`Out` are masked when the PE is route-only (no FU-backed
    ///   class at all) — with no ALU there is nothing to execute and the
    ///   output register can never be written;
    /// * `Wire(d)` — the value on the link from `node.pe` toward `d`,
    ///   available at the neighbour — is masked when that link is severed or
    ///   the receiving neighbour is dead (a wire into a dead PE delivers
    ///   nowhere);
    /// * `Reg(r)` is masked when that register slot is disabled;
    /// * `Mem` is masked when the PE's bank is disabled or outside its
    ///   capability classes.
    ///
    /// Per-op legality (a `mul` on an ALU-only PE) is *not* a mask: FU
    /// nodes are op-agnostic, so placement layers enforce it via
    /// [`CapabilityMap::supports_op`].
    ///
    /// `RegWr`/`RegRd` ports are only masked with their whole PE: with some
    /// registers still alive they remain useful, and with all registers
    /// disabled they are harmless dead ends the router never profits from.
    pub fn masks(&self, spec: &CgraSpec, node: RNode) -> bool {
        if self.is_empty() {
            return false;
        }
        if self.pe_dead(node.pe) {
            return true;
        }
        match node.kind {
            RKind::Fu | RKind::Out => !self.fu_capable(node.pe),
            RKind::Wire(dir) => {
                self.link_severed(node.pe, dir)
                    || spec.neighbor(node.pe, dir).is_some_and(|n| self.pe_dead(n))
            }
            RKind::Reg(r) => self.reg_disabled(node.pe, r as usize),
            RKind::Mem => self.mem_disabled(node.pe),
            RKind::RegWr | RKind::RegRd => false,
        }
    }

    /// The heterogeneous "corner multipliers" fabric restriction: only the
    /// four corner PEs of a `rows × cols` array keep [`OpClass::Mul`];
    /// every other PE retains ALU and memory capability.
    pub fn corner_multipliers(rows: usize, cols: usize) -> CapabilityMap {
        let mut map = CapabilityMap::new();
        let corners = [
            PeId::new(0, 0),
            PeId::new(0, cols.saturating_sub(1)),
            PeId::new(rows.saturating_sub(1), 0),
            PeId::new(rows.saturating_sub(1), cols.saturating_sub(1)),
        ];
        for x in 0..rows {
            for y in 0..cols {
                let pe = PeId::new(x, y);
                if !corners.contains(&pe) {
                    map.restrict(pe, &[OpClass::Alu, OpClass::Mem]);
                }
            }
        }
        map
    }

    /// The heterogeneous "edge-only memory" fabric restriction: interior
    /// PEs of a `rows × cols` array lose their local data-memory bank;
    /// compute capability is untouched.
    pub fn mem_edge_only(rows: usize, cols: usize) -> CapabilityMap {
        let mut map = CapabilityMap::new();
        for x in 1..rows.saturating_sub(1) {
            for y in 1..cols.saturating_sub(1) {
                map.restrict(PeId::new(x, y), &[OpClass::Alu, OpClass::Mul]);
            }
        }
        map
    }

    /// The combined heterogeneous suite fabric: corner multipliers *and*
    /// edge-only memory banks, stacked via [`CapabilityMap::restrict`].
    pub fn heterogeneous(rows: usize, cols: usize) -> CapabilityMap {
        let mut map = CapabilityMap::corner_multipliers(rows, cols);
        for x in 1..rows.saturating_sub(1) {
            for y in 1..cols.saturating_sub(1) {
                map.restrict(PeId::new(x, y), &[OpClass::Alu, OpClass::Mul]);
            }
        }
        map
    }
}

impl fmt::Display for CapabilityMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "no faults");
        }
        let mut parts = Vec::new();
        if !self.dead_pes.is_empty() {
            parts.push(format!("{} dead PE(s)", self.dead_pes.len()));
        }
        if !self.severed_links.is_empty() {
            parts.push(format!("{} severed link(s)", self.severed_links.len()));
        }
        if !self.disabled_regs.is_empty() {
            parts.push(format!("{} disabled register(s)", self.disabled_regs.len()));
        }
        if !self.disabled_mems.is_empty() {
            parts.push(format!("{} disabled memory bank(s)", self.disabled_mems.len()));
        }
        if !self.restricted.is_empty() {
            parts.push(format!("{} capability-restricted PE(s)", self.restricted.len()));
        }
        write!(f, "{}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_map_masks_nothing() {
        let spec = CgraSpec::square(4);
        let map = FaultMap::new();
        assert!(map.is_empty());
        assert_eq!(map.len(), 0);
        for pe in spec.pes() {
            assert!(!map.masks(&spec, RNode::new(pe, 0, RKind::Fu)));
        }
        assert_eq!(map.to_string(), "no faults");
    }

    #[test]
    fn dead_pe_masks_every_kind_and_incoming_wires() {
        let spec = CgraSpec::square(4);
        let mut map = FaultMap::new();
        map.kill_pe(PeId::new(1, 1));
        assert!(map.has_dead_pes());
        for kind in [RKind::Fu, RKind::Out, RKind::Mem, RKind::RegWr, RKind::RegRd, RKind::Reg(0)] {
            assert!(map.masks(&spec, RNode::new(PeId::new(1, 1), 0, kind)), "{kind:?}");
        }
        // The wire from (0,1) south into the dead PE delivers nowhere.
        assert!(map.masks(&spec, RNode::new(PeId::new(0, 1), 0, RKind::Wire(Dir::South))));
        // A wire from (0,1) east does not touch the dead PE.
        assert!(!map.masks(&spec, RNode::new(PeId::new(0, 1), 0, RKind::Wire(Dir::East))));
    }

    #[test]
    fn severed_link_is_directional() {
        let spec = CgraSpec::square(4);
        let mut map = FaultMap::new();
        map.sever_link(PeId::new(0, 0), Dir::East);
        assert!(map.masks(&spec, RNode::new(PeId::new(0, 0), 2, RKind::Wire(Dir::East))));
        // The reverse link (0,1) -> west survives.
        assert!(!map.masks(&spec, RNode::new(PeId::new(0, 1), 2, RKind::Wire(Dir::West))));
        assert!(!map.masks(&spec, RNode::new(PeId::new(0, 0), 2, RKind::Fu)));
    }

    #[test]
    fn reg_and_mem_faults_are_slot_precise() {
        let spec = CgraSpec::square(2);
        let mut map = FaultMap::new();
        map.disable_reg(PeId::new(0, 0), 2).disable_mem(PeId::new(1, 1));
        assert!(map.masks(&spec, RNode::new(PeId::new(0, 0), 0, RKind::Reg(2))));
        assert!(!map.masks(&spec, RNode::new(PeId::new(0, 0), 0, RKind::Reg(1))));
        assert!(map.masks(&spec, RNode::new(PeId::new(1, 1), 1, RKind::Mem)));
        assert!(!map.masks(&spec, RNode::new(PeId::new(0, 1), 1, RKind::Mem)));
        assert_eq!(map.len(), 2);
        let text = map.to_string();
        assert!(text.contains("register") && text.contains("memory"), "{text}");
    }

    #[test]
    fn fault_only_map_is_bit_identical_to_the_fault_model() {
        // The pin for the FaultMap → CapabilityMap refactor: a map built
        // exclusively through the fault builders must carry no capability
        // state and reproduce the original mask predicate exactly.
        let spec = CgraSpec::square(3);
        let mut map = FaultMap::new();
        map.kill_pe(PeId::new(1, 1))
            .sever_link(PeId::new(0, 0), Dir::East)
            .disable_reg(PeId::new(0, 1), 1)
            .disable_mem(PeId::new(2, 2));
        assert!(map.restricted_pes().next().is_none());
        assert_eq!(map.len(), 4);
        for pe in spec.pes() {
            // Every live PE of a fault-only map keeps full capability.
            if !map.pe_dead(pe) {
                assert!(map.supports(pe, OpClass::Alu), "{pe}");
                assert!(map.supports(pe, OpClass::Mul), "{pe}");
                assert!(map.fu_capable(pe), "{pe}");
                assert_eq!(map.supports(pe, OpClass::Mem), !map.mem_disabled(pe), "{pe}");
            }
            // And the mask predicate matches the original rules per kind.
            for t in 0..2 {
                for kind in
                    [RKind::Fu, RKind::Out, RKind::Mem, RKind::RegWr, RKind::RegRd, RKind::Reg(1)]
                {
                    let node = RNode::new(pe, t, kind);
                    let original = map.pe_dead(pe)
                        || match kind {
                            RKind::Reg(r) => map.reg_disabled(pe, r as usize),
                            RKind::Mem => map.mem_disabled(pe),
                            _ => false,
                        };
                    assert_eq!(map.masks(&spec, node), original, "{node:?}");
                }
            }
        }
    }

    #[test]
    fn route_only_pes_lose_fu_and_out() {
        let spec = CgraSpec::square(3);
        let mut map = CapabilityMap::new();
        map.set_classes(PeId::new(1, 1), &[OpClass::Route]);
        assert!(!map.is_empty());
        assert_eq!(map.len(), 1);
        assert!(!map.fu_capable(PeId::new(1, 1)));
        assert!(map.supports(PeId::new(1, 1), OpClass::Route));
        assert!(map.masks(&spec, RNode::new(PeId::new(1, 1), 0, RKind::Fu)));
        assert!(map.masks(&spec, RNode::new(PeId::new(1, 1), 1, RKind::Out)));
        // Routing fabric survives: wires, registers, ports stay usable.
        assert!(!map.masks(&spec, RNode::new(PeId::new(1, 1), 0, RKind::Wire(Dir::East))));
        assert!(!map.masks(&spec, RNode::new(PeId::new(1, 1), 0, RKind::Reg(0))));
        assert!(!map.masks(&spec, RNode::new(PeId::new(1, 1), 0, RKind::RegWr)));
        // A route-only PE has no memory class either.
        assert!(map.masks(&spec, RNode::new(PeId::new(1, 1), 0, RKind::Mem)));
        // Neighbours are untouched — route-only is not dead.
        assert!(!map.masks(&spec, RNode::new(PeId::new(0, 1), 0, RKind::Wire(Dir::South))));
        let text = map.to_string();
        assert!(text.contains("capability-restricted"), "{text}");
    }

    #[test]
    fn op_class_legality_is_per_op_not_per_mask() {
        let spec = CgraSpec::square(2);
        let mut map = CapabilityMap::new();
        map.set_classes(PeId::new(0, 0), &[OpClass::Alu, OpClass::Mem]);
        // The FU node still exists (ALU work is legal there) …
        assert!(!map.masks(&spec, RNode::new(PeId::new(0, 0), 0, RKind::Fu)));
        // … but multiply placement is rejected at the op level.
        assert!(map.supports_op(PeId::new(0, 0), OpKind::Add));
        assert!(map.supports_op(PeId::new(0, 0), OpKind::Min));
        assert!(!map.supports_op(PeId::new(0, 0), OpKind::Mul));
        assert!(map.supports_op(PeId::new(0, 1), OpKind::Mul));
    }

    #[test]
    fn set_classes_normalizes_the_homogeneous_default() {
        let mut map = CapabilityMap::new();
        map.set_classes(PeId::new(0, 0), &[OpClass::Alu, OpClass::Mul, OpClass::Mem]);
        assert!(map.is_empty(), "full class set must normalize away");
        map.set_classes(PeId::new(0, 0), &[OpClass::Alu]);
        assert!(!map.is_empty());
        map.set_classes(PeId::new(0, 0), &[OpClass::Mem, OpClass::Mul, OpClass::Alu]);
        assert!(map.is_empty(), "restoring all classes must normalize away");
    }

    #[test]
    fn restrict_intersects_and_stacks() {
        let pe = PeId::new(1, 2);
        let mut map = CapabilityMap::new();
        map.restrict(pe, &[OpClass::Alu, OpClass::Mem]);
        map.restrict(pe, &[OpClass::Alu, OpClass::Mul]);
        assert!(map.supports(pe, OpClass::Alu));
        assert!(!map.supports(pe, OpClass::Mul));
        assert!(!map.supports(pe, OpClass::Mem));
        assert!(map.mem_disabled(pe));
    }

    #[test]
    fn corner_multipliers_fabric() {
        let map = CapabilityMap::corner_multipliers(4, 4);
        let corners = [PeId::new(0, 0), PeId::new(0, 3), PeId::new(3, 0), PeId::new(3, 3)];
        for x in 0..4 {
            for y in 0..4 {
                let pe = PeId::new(x, y);
                assert_eq!(map.supports(pe, OpClass::Mul), corners.contains(&pe), "{pe}");
                assert!(map.supports(pe, OpClass::Alu), "{pe}");
                assert!(map.supports(pe, OpClass::Mem), "{pe}");
            }
        }
        assert_eq!(map.restricted_pes().count(), 12);
    }

    #[test]
    fn mem_edge_only_fabric() {
        let map = CapabilityMap::mem_edge_only(4, 4);
        for x in 0..4 {
            for y in 0..4 {
                let pe = PeId::new(x, y);
                let edge = x == 0 || x == 3 || y == 0 || y == 3;
                assert_eq!(map.supports(pe, OpClass::Mem), edge, "{pe}");
                assert_eq!(map.mem_disabled(pe), !edge, "{pe}");
                assert!(map.supports(pe, OpClass::Mul), "{pe}");
            }
        }
        assert_eq!(map.restricted_pes().count(), 4);
    }

    #[test]
    fn heterogeneous_fabric_stacks_both_restrictions() {
        let map = CapabilityMap::heterogeneous(4, 4);
        // Interior PE: ALU only (no mul, no mem).
        let interior = PeId::new(1, 2);
        assert!(map.supports(interior, OpClass::Alu));
        assert!(!map.supports(interior, OpClass::Mul));
        assert!(!map.supports(interior, OpClass::Mem));
        // Non-corner edge PE: ALU + mem.
        let edge = PeId::new(0, 1);
        assert!(map.supports(edge, OpClass::Alu));
        assert!(!map.supports(edge, OpClass::Mul));
        assert!(map.supports(edge, OpClass::Mem));
        // Corner: everything.
        let corner = PeId::new(3, 3);
        assert!(map.supports(corner, OpClass::Mul));
        assert!(map.supports(corner, OpClass::Mem));
        assert!(map.fu_capable(interior) && map.fu_capable(edge) && map.fu_capable(corner));
    }

    #[test]
    fn op_class_mapping_and_names() {
        assert_eq!(OpClass::of(OpKind::Mul), OpClass::Mul);
        for op in [OpKind::Add, OpKind::Sub, OpKind::Min, OpKind::Max] {
            assert_eq!(OpClass::of(op), OpClass::Alu, "{op:?}");
        }
        let names: Vec<&str> = ALL_OP_CLASSES.iter().map(|c| c.as_str()).collect();
        assert_eq!(names, ["alu", "mul", "mem", "route"]);
    }
}
