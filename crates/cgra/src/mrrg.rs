//! The time-extended Modulo Routing Resource Graph (MRRG).
//!
//! `H_II = (V_H, E_H)` models every schedulable resource of the CGRA over one
//! initiation interval: for each PE and each cycle `t ∈ [0, II)` there is one
//! ALU slot ([`RKind::Fu`]), an output register ([`RKind::Out`]), four mesh
//! link slots ([`RKind::Wire`]), the register-file slots ([`RKind::Reg`]) and
//! a local-data-memory read port ([`RKind::Mem`]). Because a modulo schedule
//! repeats every `II` cycles, all time arithmetic wraps mod `II` (the paper:
//! "the resources at cycle `II−1` have connectivity with the resources at
//! cycle 0").
//!
//! Large CGRAs produce MRRGs with millions of nodes, so the graph is
//! *implicit*: [`Mrrg::successors`] and [`Mrrg::predecessors`] enumerate
//! adjacent resources on demand.
//!
//! ## Timing model (1 cycle per hop)
//!
//! * An operation executing on `Fu(pe, t)` consumes operands that are
//!   *available at* cycle `t` and produces its result at `t + 1` — in its
//!   output register (`Out(pe, t+1)`), on an outgoing mesh link
//!   (`Wire(pe, d, t+1)`, consumable by the neighbour at `t + 1`), or written
//!   to the RF (`Reg(pe, r, t+1)`).
//! * `Wire(pe, d, t)` denotes the value on the link from `pe` toward its
//!   neighbour `n` in direction `d`, available *at `n`* at cycle `t`; `n`'s
//!   crossbar can feed it to `n`'s FU the same cycle or forward it (one more
//!   hop, one more cycle).
//! * Registers hold values across cycles (`Reg(t) → Reg(t+1)`).
//! * `Mem(pe, t)` is a load port of `pe`'s local data memory: a pure source
//!   producing a live-in value at cycle `t`. Stores are not routed: a
//!   live-out value terminates at its producing FU and is retired to that
//!   PE's local memory (see `DESIGN.md`).

use std::fmt;

use crate::arch::{CgraSpec, Dir, PeId, ALL_DIRS};

/// The resource kind of an MRRG node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RKind {
    /// The PE's ALU slot — executes one operation per cycle.
    Fu,
    /// The PE's output register (feedback path to its own FU).
    Out,
    /// A mesh link toward the given direction.
    Wire(Dir),
    /// One register of the PE's register file.
    Reg(u8),
    /// The register file's write ports (§VI: "two r/w ports"): every value
    /// entering the RF passes through here.
    RegWr,
    /// The register file's read ports: every value leaving the RF (other
    /// than holding in place) passes through here.
    RegRd,
    /// A read port of the PE's local data memory (value source).
    Mem,
}

impl RKind {
    /// How many *distinct signals* may occupy this resource in one cycle,
    /// under the paper's default PE (two RF ports, dual-ported data
    /// memory). Port counts are architecture parameters; prefer
    /// [`CgraSpec::capacity`] when a spec is at hand.
    pub fn capacity(self) -> usize {
        match self {
            RKind::Mem | RKind::RegWr | RKind::RegRd => 2,
            _ => 1,
        }
    }
}

impl CgraSpec {
    /// How many *distinct signals* may occupy a resource of this
    /// architecture in one cycle. A resource may always carry the same
    /// signal to several consumers (fan-out); capacities bound different
    /// signals.
    pub fn capacity(&self, kind: RKind) -> usize {
        match kind {
            RKind::Mem => self.mem_ports,
            RKind::RegWr | RKind::RegRd => self.rf_ports,
            _ => 1,
        }
    }
}

impl fmt::Display for RKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RKind::Fu => write!(f, "fu"),
            RKind::Out => write!(f, "out"),
            RKind::Wire(d) => write!(f, "wire{d}"),
            RKind::Reg(r) => write!(f, "reg{r}"),
            RKind::RegWr => write!(f, "regwr"),
            RKind::RegRd => write!(f, "regrd"),
            RKind::Mem => write!(f, "mem"),
        }
    }
}

/// One node of the MRRG: a resource of a PE at a cycle `t ∈ [0, II)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RNode {
    /// Owning PE.
    pub pe: PeId,
    /// Cycle within the initiation interval.
    pub t: u32,
    /// Resource kind.
    pub kind: RKind,
}

impl RNode {
    /// Creates an MRRG node.
    pub fn new(pe: PeId, t: u32, kind: RKind) -> Self {
        RNode { pe, t, kind }
    }
}

impl fmt::Debug for RNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}t{}", self.kind, self.pe, self.t)
    }
}

impl fmt::Display for RNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}t{}", self.kind, self.pe, self.t)
    }
}

/// The implicit time-extended MRRG of a CGRA.
///
/// # Example
///
/// ```
/// use himap_cgra::{CgraSpec, Mrrg, PeId, RKind, RNode};
///
/// let mrrg = Mrrg::new(CgraSpec::square(2), 2);
/// let fu = RNode::new(PeId::new(0, 0), 0, RKind::Fu);
/// // The FU's result lands in its output register next cycle …
/// let succs = mrrg.successors(fu);
/// assert!(succs.contains(&RNode::new(PeId::new(0, 0), 1, RKind::Out)));
/// // … and wraps mod II.
/// let fu1 = RNode::new(PeId::new(0, 0), 1, RKind::Fu);
/// assert!(mrrg.successors(fu1).contains(&RNode::new(PeId::new(0, 0), 0, RKind::Out)));
/// ```
#[derive(Clone, Debug)]
pub struct Mrrg {
    spec: CgraSpec,
    ii: u32,
}

impl Mrrg {
    /// Creates the MRRG of `spec` time-extended to `ii` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0`.
    pub fn new(spec: CgraSpec, ii: usize) -> Self {
        assert!(ii > 0, "initiation interval must be at least 1");
        Mrrg { spec, ii: ii as u32 }
    }

    /// The architecture this MRRG is built over.
    pub fn spec(&self) -> &CgraSpec {
        &self.spec
    }

    /// The initiation interval (time extent).
    pub fn ii(&self) -> usize {
        self.ii as usize
    }

    /// Total number of FU slots `|V_F_H|` (denominator of the paper's
    /// utilization metric `U`).
    pub fn fu_slots(&self) -> usize {
        self.spec.pe_count() * self.ii()
    }

    /// Total number of resource nodes.
    pub fn node_count(&self) -> usize {
        // fu + out + regwr + regrd + mem + 4 wires + rf_size regs, per PE per
        // cycle; border wires toward the array edge are not counted.
        let per_pe = 5 + self.spec.rf_size;
        let mut wires = 0usize;
        for pe in self.spec.pes() {
            wires += ALL_DIRS.iter().filter(|&&d| self.spec.neighbor(pe, d).is_some()).count();
        }
        (self.spec.pe_count() * per_pe + wires) * self.ii()
    }

    #[inline]
    fn t_next(&self, t: u32) -> u32 {
        (t + 1) % self.ii
    }

    #[inline]
    fn t_prev(&self, t: u32) -> u32 {
        (t + self.ii - 1) % self.ii
    }

    /// `true` if `node` is a valid resource of this MRRG.
    pub fn contains(&self, node: RNode) -> bool {
        if !self.spec.contains(node.pe) || node.t >= self.ii {
            return false;
        }
        match node.kind {
            RKind::Wire(d) => self.spec.neighbor(node.pe, d).is_some(),
            RKind::Reg(r) => (r as usize) < self.spec.rf_size,
            _ => true,
        }
    }

    /// Enumerates all resource nodes (for tests and small explicit uses).
    pub fn nodes(&self) -> Vec<RNode> {
        let mut out = Vec::with_capacity(self.node_count());
        for pe in self.spec.pes() {
            for t in 0..self.ii {
                out.push(RNode::new(pe, t, RKind::Fu));
                out.push(RNode::new(pe, t, RKind::Out));
                for d in ALL_DIRS {
                    if self.spec.neighbor(pe, d).is_some() {
                        out.push(RNode::new(pe, t, RKind::Wire(d)));
                    }
                }
                for r in 0..self.spec.rf_size {
                    out.push(RNode::new(pe, t, RKind::Reg(r as u8)));
                }
                out.push(RNode::new(pe, t, RKind::RegWr));
                out.push(RNode::new(pe, t, RKind::RegRd));
                out.push(RNode::new(pe, t, RKind::Mem));
            }
        }
        out
    }

    /// The resources a value sitting on `node` can move to next.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `node` is not part of this MRRG.
    pub fn successors(&self, node: RNode) -> Vec<RNode> {
        debug_assert!(self.contains(node), "{node:?} outside MRRG");
        let pe = node.pe;
        let t1 = self.t_next(node.t);
        let mut out = Vec::with_capacity(8);
        match node.kind {
            RKind::Fu => {
                // Result produced at the end of cycle t: output register,
                // outgoing links, RF write port — all available at t+1.
                out.push(RNode::new(pe, t1, RKind::Out));
                self.push_wires(pe, t1, &mut out);
                out.push(RNode::new(pe, t1, RKind::RegWr));
            }
            RKind::Out => {
                // Feedback to own FU this cycle; re-drive links/RF next cycle;
                // hold in the output register.
                out.push(RNode::new(pe, node.t, RKind::Fu));
                out.push(RNode::new(pe, t1, RKind::Out));
                self.push_wires(pe, t1, &mut out);
                out.push(RNode::new(pe, t1, RKind::RegWr));
            }
            RKind::Wire(d) => {
                // Value is at the neighbour `n` this cycle: feed n's FU now,
                // or pass through n's crossbar (one more hop / RF write).
                // A wire node only exists when the neighbour does (see
                // `contains`), so a dangling direction has no successors.
                if let Some(n) = self.spec.neighbor(pe, d) {
                    out.push(RNode::new(n, node.t, RKind::Fu));
                    self.push_wires(n, t1, &mut out);
                    out.push(RNode::new(n, t1, RKind::RegWr));
                }
            }
            RKind::RegWr => {
                // The write completes within the cycle: any register of this
                // PE becomes readable now.
                self.push_regs(pe, node.t, &mut out);
            }
            RKind::Reg(r) => {
                // Hold in place, or leave through a read port.
                out.push(RNode::new(pe, t1, RKind::Reg(r)));
                out.push(RNode::new(pe, node.t, RKind::RegRd));
            }
            RKind::RegRd => {
                // Read into own FU this cycle, or drive out next cycle.
                out.push(RNode::new(pe, node.t, RKind::Fu));
                self.push_wires(pe, t1, &mut out);
            }
            RKind::Mem => {
                // Loaded value: feed own FU this cycle, or move it out.
                out.push(RNode::new(pe, node.t, RKind::Fu));
                self.push_wires(pe, t1, &mut out);
                out.push(RNode::new(pe, t1, RKind::RegWr));
            }
        }
        out
    }

    /// The resources a value could have come from to reach `node` — the
    /// exact inverse of [`Mrrg::successors`].
    pub fn predecessors(&self, node: RNode) -> Vec<RNode> {
        debug_assert!(self.contains(node), "{node:?} outside MRRG");
        let pe = node.pe;
        let t0 = self.t_prev(node.t);
        let mut out = Vec::with_capacity(10);
        match node.kind {
            RKind::Fu => {
                // Operands arrive from own Out/RegRd/Mem this cycle, or from
                // incoming wires this cycle.
                out.push(RNode::new(pe, node.t, RKind::Out));
                out.push(RNode::new(pe, node.t, RKind::RegRd));
                out.push(RNode::new(pe, node.t, RKind::Mem));
                self.push_incoming_wires(pe, node.t, &mut out);
            }
            RKind::Out => {
                out.push(RNode::new(pe, t0, RKind::Fu));
                out.push(RNode::new(pe, t0, RKind::Out));
            }
            RKind::Wire(_) => {
                // Driven by this PE at t-1: FU result, Out re-drive, RF read,
                // Mem load, or a pass-through of a value that arrived at t-1.
                out.push(RNode::new(pe, t0, RKind::Fu));
                out.push(RNode::new(pe, t0, RKind::Out));
                out.push(RNode::new(pe, t0, RKind::RegRd));
                out.push(RNode::new(pe, t0, RKind::Mem));
                self.push_incoming_wires(pe, t0, &mut out);
            }
            RKind::RegWr => {
                out.push(RNode::new(pe, t0, RKind::Fu));
                out.push(RNode::new(pe, t0, RKind::Out));
                out.push(RNode::new(pe, t0, RKind::Mem));
                self.push_incoming_wires(pe, t0, &mut out);
            }
            RKind::Reg(r) => {
                out.push(RNode::new(pe, node.t, RKind::RegWr));
                out.push(RNode::new(pe, t0, RKind::Reg(r)));
            }
            RKind::RegRd => {
                self.push_regs(pe, node.t, &mut out);
            }
            RKind::Mem => {}
        }
        out
    }

    /// `true` if the MRRG has a directed edge `from → to`.
    pub fn is_edge(&self, from: RNode, to: RNode) -> bool {
        self.edge_latency(from, to).is_some()
    }

    /// The architectural latency in cycles of the MRRG edge `from → to`:
    /// `Some(0)` for same-cycle crossbar feeds (`Out/Wire/RegRd/Mem → Fu`,
    /// `RegWr → Reg`, `Reg → RegRd`), `Some(1)` for every clocked hop, or
    /// `None` when no such edge exists.
    ///
    /// The latency cannot be recovered from the `t` fields alone: they wrap
    /// mod `II`, so at `II = 1` a 0-cycle feed and a 1-cycle hop look
    /// identical. The resource-kind pair disambiguates, which is what an
    /// independent checker needs to re-derive a route's absolute timing
    /// (see the 1-cycle-per-hop model in the module docs).
    pub fn edge_latency(&self, from: RNode, to: RNode) -> Option<u32> {
        if !self.contains(from) || !self.contains(to) || !self.successors(from).contains(&to) {
            return None;
        }
        let same_cycle = matches!(
            (from.kind, to.kind),
            (RKind::Out | RKind::Wire(_) | RKind::RegRd | RKind::Mem, RKind::Fu)
                | (RKind::RegWr, RKind::Reg(_))
                | (RKind::Reg(_), RKind::RegRd)
        );
        Some(if same_cycle { 0 } else { 1 })
    }

    fn push_wires(&self, pe: PeId, t: u32, out: &mut Vec<RNode>) {
        for d in ALL_DIRS {
            if self.spec.neighbor(pe, d).is_some() {
                out.push(RNode::new(pe, t, RKind::Wire(d)));
            }
        }
    }

    fn push_regs(&self, pe: PeId, t: u32, out: &mut Vec<RNode>) {
        for r in 0..self.spec.rf_size {
            out.push(RNode::new(pe, t, RKind::Reg(r as u8)));
        }
    }

    /// Wires whose value is present *at* `pe` at cycle `t` (links from
    /// neighbours toward `pe`).
    fn push_incoming_wires(&self, pe: PeId, t: u32, out: &mut Vec<RNode>) {
        for d in ALL_DIRS {
            if let Some(n) = self.spec.neighbor(pe, d) {
                out.push(RNode::new(n, t, RKind::Wire(d.opposite())));
            }
        }
    }
}

#[allow(clippy::unwrap_used, clippy::expect_used)]
#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn mrrg(c: usize, ii: usize) -> Mrrg {
        Mrrg::new(CgraSpec::square(c), ii)
    }

    #[test]
    fn fu_slots_counts() {
        let m = mrrg(4, 3);
        assert_eq!(m.fu_slots(), 48);
    }

    #[test]
    fn node_count_matches_enumeration() {
        for (c, ii) in [(1, 1), (2, 2), (3, 2)] {
            let m = mrrg(c, ii);
            assert_eq!(m.nodes().len(), m.node_count(), "c={c} ii={ii}");
        }
    }

    #[test]
    fn all_nodes_contained() {
        let m = mrrg(2, 3);
        for n in m.nodes() {
            assert!(m.contains(n), "{n:?}");
        }
    }

    #[test]
    fn successors_stay_in_graph() {
        let m = mrrg(3, 2);
        for n in m.nodes() {
            for s in m.successors(n) {
                assert!(m.contains(s), "{n:?} -> {s:?}");
            }
            for p in m.predecessors(n) {
                assert!(m.contains(p), "{p:?} -> {n:?}");
            }
        }
    }

    #[test]
    fn successors_predecessors_are_inverse() {
        // Build the explicit edge set both ways and compare.
        let m = mrrg(2, 3);
        let mut fwd: HashSet<(RNode, RNode)> = HashSet::new();
        let mut bwd: HashSet<(RNode, RNode)> = HashSet::new();
        for n in m.nodes() {
            for s in m.successors(n) {
                fwd.insert((n, s));
            }
            for p in m.predecessors(n) {
                bwd.insert((p, n));
            }
        }
        let missing_bwd: Vec<_> = fwd.difference(&bwd).take(5).collect();
        let missing_fwd: Vec<_> = bwd.difference(&fwd).take(5).collect();
        assert!(missing_bwd.is_empty(), "in successors but not predecessors: {missing_bwd:?}");
        assert!(missing_fwd.is_empty(), "in predecessors but not successors: {missing_fwd:?}");
    }

    #[test]
    fn modulo_wraparound() {
        let m = mrrg(2, 2);
        let fu = RNode::new(PeId::new(0, 0), 1, RKind::Fu);
        let succs = m.successors(fu);
        // t = 1 wraps to t = 0.
        assert!(succs.contains(&RNode::new(PeId::new(0, 0), 0, RKind::Out)));
        assert!(succs.iter().all(|s| s.t < 2));
    }

    #[test]
    fn single_pe_has_no_wires() {
        let m = mrrg(1, 2);
        for n in m.nodes() {
            assert!(!matches!(n.kind, RKind::Wire(_)));
            for s in m.successors(n) {
                assert!(!matches!(s.kind, RKind::Wire(_)));
            }
        }
        // Same-PE dependent ops are still routable: Fu(0) -> Out(1) -> Fu(1).
        let fu0 = RNode::new(PeId::new(0, 0), 0, RKind::Fu);
        let out1 = RNode::new(PeId::new(0, 0), 1, RKind::Out);
        let fu1 = RNode::new(PeId::new(0, 0), 1, RKind::Fu);
        assert!(m.successors(fu0).contains(&out1));
        assert!(m.successors(out1).contains(&fu1));
    }

    #[test]
    fn wire_reaches_neighbor_fu_same_cycle() {
        let m = mrrg(2, 2);
        let w = RNode::new(PeId::new(0, 0), 1, RKind::Wire(Dir::South));
        let succs = m.successors(w);
        assert!(succs.contains(&RNode::new(PeId::new(1, 0), 1, RKind::Fu)));
        // Pass-through continues from the neighbor one cycle later.
        assert!(succs.contains(&RNode::new(PeId::new(1, 0), 0, RKind::Wire(Dir::East))));
    }

    #[test]
    fn one_cycle_per_hop() {
        // Fu(0,0)@t0 -> Wire(S)@t1 -> Fu(1,0)@t1: neighbor consumes at t+1.
        let m = mrrg(2, 4);
        let fu = RNode::new(PeId::new(0, 0), 0, RKind::Fu);
        let wire = RNode::new(PeId::new(0, 0), 1, RKind::Wire(Dir::South));
        assert!(m.successors(fu).contains(&wire));
        assert!(m.successors(wire).contains(&RNode::new(PeId::new(1, 0), 1, RKind::Fu)));
    }

    #[test]
    fn mem_is_pure_source() {
        let m = mrrg(2, 2);
        let mem = RNode::new(PeId::new(0, 0), 0, RKind::Mem);
        assert!(m.predecessors(mem).is_empty());
        assert!(m.successors(mem).contains(&RNode::new(PeId::new(0, 0), 0, RKind::Fu)));
    }

    #[test]
    fn capacities() {
        assert_eq!(RKind::Fu.capacity(), 1);
        assert_eq!(RKind::Wire(Dir::North).capacity(), 1);
        assert_eq!(RKind::Reg(0).capacity(), 1);
        assert_eq!(RKind::Mem.capacity(), 2);
    }

    #[test]
    #[should_panic(expected = "initiation interval")]
    fn zero_ii_panics() {
        let _ = Mrrg::new(CgraSpec::square(2), 0);
    }

    #[test]
    fn edge_latencies_match_timing_model() {
        let m = mrrg(2, 4);
        let pe = PeId::new(0, 0);
        // Clocked hops cost one cycle.
        let fu = RNode::new(pe, 0, RKind::Fu);
        let out = RNode::new(pe, 1, RKind::Out);
        assert_eq!(m.edge_latency(fu, out), Some(1));
        assert_eq!(m.edge_latency(out, RNode::new(pe, 2, RKind::Out)), Some(1));
        // Same-cycle crossbar feeds cost zero.
        assert_eq!(m.edge_latency(out, RNode::new(pe, 1, RKind::Fu)), Some(0));
        let wire = RNode::new(pe, 1, RKind::Wire(Dir::South));
        assert_eq!(m.edge_latency(fu, wire), Some(1));
        assert_eq!(m.edge_latency(wire, RNode::new(PeId::new(1, 0), 1, RKind::Fu)), Some(0));
        let regwr = RNode::new(pe, 1, RKind::RegWr);
        let reg = RNode::new(pe, 1, RKind::Reg(0));
        let regrd = RNode::new(pe, 1, RKind::RegRd);
        assert_eq!(m.edge_latency(fu, regwr), Some(1));
        assert_eq!(m.edge_latency(regwr, reg), Some(0));
        assert_eq!(m.edge_latency(reg, regrd), Some(0));
        assert_eq!(m.edge_latency(regrd, RNode::new(pe, 1, RKind::Fu)), Some(0));
        assert_eq!(m.edge_latency(reg, RNode::new(pe, 2, RKind::Reg(0))), Some(1));
        // Non-edges and out-of-graph nodes report none.
        assert_eq!(m.edge_latency(fu, RNode::new(pe, 3, RKind::Out)), None);
        assert_eq!(m.edge_latency(fu, RNode::new(PeId::new(5, 5), 1, RKind::Out)), None);
        assert!(!m.is_edge(fu, RNode::new(pe, 0, RKind::Fu)));
    }

    #[test]
    fn at_ii_one_latency_is_kind_derived() {
        // With II = 1 every t field is 0; only the kind pair can tell a
        // 1-cycle hop from a same-cycle feed.
        let m = Mrrg::new(CgraSpec::square(2), 1);
        let pe = PeId::new(0, 0);
        let fu = RNode::new(pe, 0, RKind::Fu);
        let out = RNode::new(pe, 0, RKind::Out);
        assert_eq!(m.edge_latency(fu, out), Some(1));
        assert_eq!(m.edge_latency(out, fu), Some(0));
    }
}
