//! The time-extended Modulo Routing Resource Graph (MRRG).
//!
//! `H_II = (V_H, E_H)` models every schedulable resource of the CGRA over one
//! initiation interval: for each PE and each cycle `t ∈ [0, II)` there is one
//! ALU slot ([`RKind::Fu`]), an output register ([`RKind::Out`]), four mesh
//! link slots ([`RKind::Wire`]), the register-file slots ([`RKind::Reg`]) and
//! a local-data-memory read port ([`RKind::Mem`]). Because a modulo schedule
//! repeats every `II` cycles, all time arithmetic wraps mod `II` (the paper:
//! "the resources at cycle `II−1` have connectivity with the resources at
//! cycle 0").
//!
//! Large CGRAs produce MRRGs with millions of nodes, so the graph is
//! *implicit*: [`Mrrg::successors`] and [`Mrrg::predecessors`] enumerate
//! adjacent resources on demand.
//!
//! For hot paths the implicit graph is compiled once into an [`MrrgIndex`]:
//! every node gets a dense [`RIdx`] id and the full adjacency (with per-edge
//! latencies) is laid out in CSR form, so routers index flat arrays instead
//! of hashing [`RNode`] keys. The implicit enumeration stays as the
//! reference implementation the index is differentially tested against.
//!
//! ## Timing model (1 cycle per hop)
//!
//! * An operation executing on `Fu(pe, t)` consumes operands that are
//!   *available at* cycle `t` and produces its result at `t + 1` — in its
//!   output register (`Out(pe, t+1)`), on an outgoing mesh link
//!   (`Wire(pe, d, t+1)`, consumable by the neighbour at `t + 1`), or written
//!   to the RF (`Reg(pe, r, t+1)`).
//! * `Wire(pe, d, t)` denotes the value on the link from `pe` toward its
//!   neighbour `n` in direction `d`, available *at `n`* at cycle `t`; `n`'s
//!   crossbar can feed it to `n`'s FU the same cycle or forward it (one more
//!   hop, one more cycle).
//! * Registers hold values across cycles (`Reg(t) → Reg(t+1)`).
//! * `Mem(pe, t)` is a load port of `pe`'s local data memory: a pure source
//!   producing a live-in value at cycle `t`. Stores are not routed: a
//!   live-out value terminates at its producing FU and is retired to that
//!   PE's local memory (see `DESIGN.md`).

use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

use crate::arch::{CgraSpec, Dir, PeId, ALL_DIRS};

/// The resource kind of an MRRG node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RKind {
    /// The PE's ALU slot — executes one operation per cycle.
    Fu,
    /// The PE's output register (feedback path to its own FU).
    Out,
    /// A mesh link toward the given direction.
    Wire(Dir),
    /// One register of the PE's register file.
    Reg(u8),
    /// The register file's write ports (§VI: "two r/w ports"): every value
    /// entering the RF passes through here.
    RegWr,
    /// The register file's read ports: every value leaving the RF (other
    /// than holding in place) passes through here.
    RegRd,
    /// A read port of the PE's local data memory (value source).
    Mem,
}

impl RKind {
    /// How many *distinct signals* may occupy this resource in one cycle,
    /// under the paper's default PE (two RF ports, dual-ported data
    /// memory). Port counts are architecture parameters; prefer
    /// [`CgraSpec::capacity`] when a spec is at hand.
    pub fn capacity(self) -> usize {
        match self {
            RKind::Mem | RKind::RegWr | RKind::RegRd => 2,
            _ => 1,
        }
    }
}

impl CgraSpec {
    /// How many *distinct signals* may occupy a resource of this
    /// architecture in one cycle. A resource may always carry the same
    /// signal to several consumers (fan-out); capacities bound different
    /// signals.
    pub fn capacity(&self, kind: RKind) -> usize {
        match kind {
            RKind::Mem => self.mem_ports,
            RKind::RegWr | RKind::RegRd => self.rf_ports,
            _ => 1,
        }
    }
}

impl fmt::Display for RKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RKind::Fu => write!(f, "fu"),
            RKind::Out => write!(f, "out"),
            RKind::Wire(d) => write!(f, "wire{d}"),
            RKind::Reg(r) => write!(f, "reg{r}"),
            RKind::RegWr => write!(f, "regwr"),
            RKind::RegRd => write!(f, "regrd"),
            RKind::Mem => write!(f, "mem"),
        }
    }
}

/// One node of the MRRG: a resource of a PE at a cycle `t ∈ [0, II)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RNode {
    /// Owning PE.
    pub pe: PeId,
    /// Cycle within the initiation interval.
    pub t: u32,
    /// Resource kind.
    pub kind: RKind,
}

impl RNode {
    /// Creates an MRRG node.
    pub fn new(pe: PeId, t: u32, kind: RKind) -> Self {
        RNode { pe, t, kind }
    }
}

impl fmt::Debug for RNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}t{}", self.kind, self.pe, self.t)
    }
}

impl fmt::Display for RNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}t{}", self.kind, self.pe, self.t)
    }
}

/// `true` when the MRRG edge `from → to` completes within one cycle (a
/// crossbar feed), `false` for a clocked hop. Shared by
/// [`Mrrg::edge_latency`] and the [`MrrgIndex`] CSR builder so the two can
/// never drift apart.
fn same_cycle(from: RKind, to: RKind) -> bool {
    matches!(
        (from, to),
        (RKind::Out | RKind::Wire(_) | RKind::RegRd | RKind::Mem, RKind::Fu)
            | (RKind::RegWr, RKind::Reg(_))
            | (RKind::Reg(_), RKind::RegRd)
    )
}

/// The implicit time-extended MRRG of a CGRA.
///
/// # Example
///
/// ```
/// use himap_cgra::{CgraSpec, Mrrg, PeId, RKind, RNode};
///
/// let mrrg = Mrrg::new(CgraSpec::square(2), 2);
/// let fu = RNode::new(PeId::new(0, 0), 0, RKind::Fu);
/// // The FU's result lands in its output register next cycle …
/// let succs = mrrg.successors(fu);
/// assert!(succs.contains(&RNode::new(PeId::new(0, 0), 1, RKind::Out)));
/// // … and wraps mod II.
/// let fu1 = RNode::new(PeId::new(0, 0), 1, RKind::Fu);
/// assert!(mrrg.successors(fu1).contains(&RNode::new(PeId::new(0, 0), 0, RKind::Out)));
/// ```
#[derive(Clone, Debug)]
pub struct Mrrg {
    spec: CgraSpec,
    ii: u32,
    /// `true` when `spec.faults` masks at least one resource. Cached so the
    /// pristine-fabric hot path pays exactly one branch per mask check.
    faulty: bool,
}

impl Mrrg {
    /// Creates the MRRG of `spec` time-extended to `ii` cycles. Resources
    /// masked by `spec.faults` do not exist in the graph: they are skipped by
    /// [`Mrrg::nodes_iter`], rejected by [`Mrrg::contains`] and never emitted
    /// as successors or predecessors, so routing transparently avoids them.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0`.
    pub fn new(spec: CgraSpec, ii: usize) -> Self {
        assert!(ii > 0, "initiation interval must be at least 1");
        let faulty = !spec.faults.is_empty();
        Mrrg { spec, ii: ii as u32, faulty }
    }

    /// Whether this map's fault model masks `node` (always `false` on a
    /// pristine fabric — a single cached branch).
    #[inline]
    fn masked(&self, node: RNode) -> bool {
        self.faulty && self.spec.faults.masks(&self.spec, node)
    }

    /// The architecture this MRRG is built over.
    pub fn spec(&self) -> &CgraSpec {
        &self.spec
    }

    /// The initiation interval (time extent).
    pub fn ii(&self) -> usize {
        self.ii as usize
    }

    /// Total number of FU slots `|V_F_H|` (denominator of the paper's
    /// utilization metric `U`).
    pub fn fu_slots(&self) -> usize {
        self.spec.pe_count() * self.ii()
    }

    /// Total number of resource nodes.
    pub fn node_count(&self) -> usize {
        if self.faulty {
            // Rarely called; the masked count has no closed form worth the
            // maintenance risk of keeping in sync with `FaultMap::masks`.
            return self.nodes_iter().count();
        }
        // fu + out + regwr + regrd + mem + 4 wires + rf_size regs, per PE per
        // cycle; border wires toward the array edge are not counted.
        let per_pe = 5 + self.spec.rf_size;
        let mut wires = 0usize;
        for pe in self.spec.pes() {
            wires += ALL_DIRS.iter().filter(|&&d| self.spec.neighbor(pe, d).is_some()).count();
        }
        (self.spec.pe_count() * per_pe + wires) * self.ii()
    }

    #[inline]
    fn t_next(&self, t: u32) -> u32 {
        (t + 1) % self.ii
    }

    #[inline]
    fn t_prev(&self, t: u32) -> u32 {
        (t + self.ii - 1) % self.ii
    }

    /// `true` if `node` is a valid resource of this MRRG. Faulted resources
    /// are not part of the graph.
    pub fn contains(&self, node: RNode) -> bool {
        if !self.spec.contains(node.pe) || node.t >= self.ii || self.masked(node) {
            return false;
        }
        match node.kind {
            RKind::Wire(d) => self.spec.neighbor(node.pe, d).is_some(),
            RKind::Reg(r) => (r as usize) < self.spec.rf_size,
            _ => true,
        }
    }

    /// Iterates all resource nodes in ascending [`RNode`] order without
    /// materializing them — the allocation-free form of [`Mrrg::nodes`].
    pub fn nodes_iter(&self) -> impl Iterator<Item = RNode> + '_ {
        let ii = self.ii;
        let rf = self.spec.rf_size;
        self.spec
            .pes()
            .flat_map(move |pe| {
                (0..ii).flat_map(move |t| {
                    [RKind::Fu, RKind::Out]
                        .into_iter()
                        .chain(
                            ALL_DIRS
                                .into_iter()
                                .filter(move |&d| self.spec.neighbor(pe, d).is_some())
                                .map(RKind::Wire),
                        )
                        .chain((0..rf).map(|r| RKind::Reg(r as u8)))
                        .chain([RKind::RegWr, RKind::RegRd, RKind::Mem])
                        .map(move |kind| RNode::new(pe, t, kind))
                })
            })
            .filter(move |&n| !self.masked(n))
    }

    /// Enumerates all resource nodes (for tests and small explicit uses;
    /// hot paths should prefer [`Mrrg::nodes_iter`] or an [`MrrgIndex`]).
    pub fn nodes(&self) -> Vec<RNode> {
        let mut out = Vec::with_capacity(self.node_count());
        out.extend(self.nodes_iter());
        out
    }

    /// Calls `f` with each resource a value sitting on `node` can move to
    /// next, in the same deterministic order as [`Mrrg::successors`].
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `node` is not part of this MRRG.
    pub fn for_each_successor(&self, node: RNode, mut f: impl FnMut(RNode)) {
        debug_assert!(self.contains(node), "{node:?} outside MRRG");
        // Filter faulted endpoints at the emission point, so every consumer
        // (routers, the CSR builder, the verifier) sees only live resources.
        let mut f = |n: RNode| {
            if !self.masked(n) {
                f(n);
            }
        };
        let pe = node.pe;
        let t1 = self.t_next(node.t);
        match node.kind {
            RKind::Fu => {
                // Result produced at the end of cycle t: output register,
                // outgoing links, RF write port — all available at t+1.
                f(RNode::new(pe, t1, RKind::Out));
                self.each_wire(pe, t1, &mut f);
                f(RNode::new(pe, t1, RKind::RegWr));
            }
            RKind::Out => {
                // Feedback to own FU this cycle; re-drive links/RF next cycle;
                // hold in the output register.
                f(RNode::new(pe, node.t, RKind::Fu));
                f(RNode::new(pe, t1, RKind::Out));
                self.each_wire(pe, t1, &mut f);
                f(RNode::new(pe, t1, RKind::RegWr));
            }
            RKind::Wire(d) => {
                // Value is at the neighbour `n` this cycle: feed n's FU now,
                // or pass through n's crossbar (one more hop / RF write).
                // A wire node only exists when the neighbour does (see
                // `contains`), so a dangling direction has no successors.
                if let Some(n) = self.spec.neighbor(pe, d) {
                    f(RNode::new(n, node.t, RKind::Fu));
                    self.each_wire(n, t1, &mut f);
                    f(RNode::new(n, t1, RKind::RegWr));
                }
            }
            RKind::RegWr => {
                // The write completes within the cycle: any register of this
                // PE becomes readable now.
                self.each_reg(pe, node.t, &mut f);
            }
            RKind::Reg(r) => {
                // Hold in place, or leave through a read port.
                f(RNode::new(pe, t1, RKind::Reg(r)));
                f(RNode::new(pe, node.t, RKind::RegRd));
            }
            RKind::RegRd => {
                // Read into own FU this cycle, or drive out next cycle.
                f(RNode::new(pe, node.t, RKind::Fu));
                self.each_wire(pe, t1, &mut f);
            }
            RKind::Mem => {
                // Loaded value: feed own FU this cycle, or move it out.
                f(RNode::new(pe, node.t, RKind::Fu));
                self.each_wire(pe, t1, &mut f);
                f(RNode::new(pe, t1, RKind::RegWr));
            }
        }
    }

    /// Calls `f` with each resource a value could have come from to reach
    /// `node` — the exact inverse of [`Mrrg::for_each_successor`].
    pub fn for_each_predecessor(&self, node: RNode, mut f: impl FnMut(RNode)) {
        debug_assert!(self.contains(node), "{node:?} outside MRRG");
        // Mirrors `for_each_successor`: masked sources never reach `f`, which
        // keeps the successor/predecessor inverse property on the live graph.
        let mut f = |n: RNode| {
            if !self.masked(n) {
                f(n);
            }
        };
        let pe = node.pe;
        let t0 = self.t_prev(node.t);
        match node.kind {
            RKind::Fu => {
                // Operands arrive from own Out/RegRd/Mem this cycle, or from
                // incoming wires this cycle.
                f(RNode::new(pe, node.t, RKind::Out));
                f(RNode::new(pe, node.t, RKind::RegRd));
                f(RNode::new(pe, node.t, RKind::Mem));
                self.each_incoming_wire(pe, node.t, &mut f);
            }
            RKind::Out => {
                f(RNode::new(pe, t0, RKind::Fu));
                f(RNode::new(pe, t0, RKind::Out));
            }
            RKind::Wire(_) => {
                // Driven by this PE at t-1: FU result, Out re-drive, RF read,
                // Mem load, or a pass-through of a value that arrived at t-1.
                f(RNode::new(pe, t0, RKind::Fu));
                f(RNode::new(pe, t0, RKind::Out));
                f(RNode::new(pe, t0, RKind::RegRd));
                f(RNode::new(pe, t0, RKind::Mem));
                self.each_incoming_wire(pe, t0, &mut f);
            }
            RKind::RegWr => {
                f(RNode::new(pe, t0, RKind::Fu));
                f(RNode::new(pe, t0, RKind::Out));
                f(RNode::new(pe, t0, RKind::Mem));
                self.each_incoming_wire(pe, t0, &mut f);
            }
            RKind::Reg(r) => {
                f(RNode::new(pe, node.t, RKind::RegWr));
                f(RNode::new(pe, t0, RKind::Reg(r)));
            }
            RKind::RegRd => {
                self.each_reg(pe, node.t, &mut f);
            }
            RKind::Mem => {}
        }
    }

    /// Clears `out` and fills it with the successors of `node`, reusing the
    /// buffer's allocation — the buffer-reuse form of [`Mrrg::successors`].
    pub fn successors_into(&self, node: RNode, out: &mut Vec<RNode>) {
        out.clear();
        self.for_each_successor(node, |n| out.push(n));
    }

    /// Clears `out` and fills it with the predecessors of `node`, reusing
    /// the buffer's allocation.
    pub fn predecessors_into(&self, node: RNode, out: &mut Vec<RNode>) {
        out.clear();
        self.for_each_predecessor(node, |n| out.push(n));
    }

    /// The resources a value sitting on `node` can move to next.
    ///
    /// Allocates a fresh `Vec` per call — kept for tests and one-off
    /// queries; hot paths should use [`Mrrg::successors_into`],
    /// [`Mrrg::for_each_successor`] or an [`MrrgIndex`].
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `node` is not part of this MRRG.
    pub fn successors(&self, node: RNode) -> Vec<RNode> {
        let mut out = Vec::with_capacity(8);
        self.for_each_successor(node, |n| out.push(n));
        out
    }

    /// The resources a value could have come from to reach `node` — the
    /// exact inverse of [`Mrrg::successors`]. Allocates per call; hot paths
    /// should use [`Mrrg::predecessors_into`] or an [`MrrgIndex`].
    pub fn predecessors(&self, node: RNode) -> Vec<RNode> {
        let mut out = Vec::with_capacity(10);
        self.for_each_predecessor(node, |n| out.push(n));
        out
    }

    /// `true` if the MRRG has a directed edge `from → to`.
    pub fn is_edge(&self, from: RNode, to: RNode) -> bool {
        self.edge_latency(from, to).is_some()
    }

    /// The architectural latency in cycles of the MRRG edge `from → to`:
    /// `Some(0)` for same-cycle crossbar feeds (`Out/Wire/RegRd/Mem → Fu`,
    /// `RegWr → Reg`, `Reg → RegRd`), `Some(1)` for every clocked hop, or
    /// `None` when no such edge exists.
    ///
    /// The latency cannot be recovered from the `t` fields alone: they wrap
    /// mod `II`, so at `II = 1` a 0-cycle feed and a 1-cycle hop look
    /// identical. The resource-kind pair disambiguates, which is what an
    /// independent checker needs to re-derive a route's absolute timing
    /// (see the 1-cycle-per-hop model in the module docs).
    pub fn edge_latency(&self, from: RNode, to: RNode) -> Option<u32> {
        if !self.contains(from) || !self.contains(to) {
            return None;
        }
        let mut found = false;
        self.for_each_successor(from, |s| found |= s == to);
        if !found {
            return None;
        }
        Some(if same_cycle(from.kind, to.kind) { 0 } else { 1 })
    }

    fn each_wire(&self, pe: PeId, t: u32, f: &mut impl FnMut(RNode)) {
        for d in ALL_DIRS {
            if self.spec.neighbor(pe, d).is_some() {
                f(RNode::new(pe, t, RKind::Wire(d)));
            }
        }
    }

    fn each_reg(&self, pe: PeId, t: u32, f: &mut impl FnMut(RNode)) {
        for r in 0..self.spec.rf_size {
            f(RNode::new(pe, t, RKind::Reg(r as u8)));
        }
    }

    /// Wires whose value is present *at* `pe` at cycle `t` (links from
    /// neighbours toward `pe`).
    fn each_incoming_wire(&self, pe: PeId, t: u32, f: &mut impl FnMut(RNode)) {
        for d in ALL_DIRS {
            if let Some(n) = self.spec.neighbor(pe, d) {
                f(RNode::new(n, t, RKind::Wire(d.opposite())));
            }
        }
    }
}

/// Dense id of an MRRG node within an [`MrrgIndex`]: `0 ≤ RIdx.0 <
/// MrrgIndex::len()`. Ids are assigned in ascending [`RNode`] order, so
/// comparing two `RIdx` is equivalent to comparing the nodes they denote —
/// routers can tie-break on the id without reconstructing the node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RIdx(pub u32);

impl RIdx {
    /// The id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Marks an absent entry in the padded node table.
const INVALID: u32 = u32::MAX;
/// Bit of a packed CSR edge word holding the edge's latency (0 or 1).
const LAT_BIT: u32 = 1 << 31;
/// Node count above which [`MrrgIndex::new`] shards the CSR build across
/// threads. Small fabrics build faster serially than they spawn threads.
const SHARD_THRESHOLD: usize = 1 << 15;

/// Memory footprint of one compiled [`MrrgIndex`].
///
/// Surfaced through `PipelineStats` so callers can assert that a mapping
/// run never materialised a full-fabric graph (the mega-fabric tiled path
/// must stay at sub-CGRA scale).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Indexed MRRG nodes.
    pub nodes: usize,
    /// Directed MRRG edges (forward CSR length; the backward CSR mirrors
    /// the same edges).
    pub edges: usize,
    /// Bytes held by the index's dense tables (padded id table,
    /// capacities, both CSR halves and the node list).
    pub bytes: usize,
}

impl MemoryStats {
    /// Field-wise maximum — the high-water mark across several builds.
    pub fn max(self, other: MemoryStats) -> MemoryStats {
        MemoryStats {
            nodes: self.nodes.max(other.nodes),
            edges: self.edges.max(other.edges),
            bytes: self.bytes.max(other.bytes),
        }
    }
}

/// The [`Mrrg`] compiled to dense ids and CSR adjacency.
///
/// Built once per `(spec, II)` — see [`MrrgIndex::shared`] — and then read
/// concurrently by every router, candidate-walk worker and verifier that
/// needs the graph. Per edge the CSR stores the target id plus the
/// architectural latency (one bit: crossbar feed or clocked hop), so
/// routing and hop-timing checks never re-enumerate neighbour sets.
///
/// The dense order is the ascending [`RNode`] order of [`Mrrg::nodes`];
/// adjacency rows preserve the enumeration order of [`Mrrg::successors`] /
/// [`Mrrg::predecessors`] exactly. Both properties are what make an indexed
/// search bit-identical to one over the implicit graph (same tie-breaks,
/// same relaxation order) — and they are locked in by differential tests.
#[derive(Debug)]
pub struct MrrgIndex {
    mrrg: Mrrg,
    /// Padded `(pe, t, slot) → dense id` table; `INVALID` where no node
    /// exists (mesh-border wire slots).
    idx_of: Vec<u32>,
    /// Dense id → node.
    node_of: Vec<RNode>,
    /// Dense id → signal capacity of the resource.
    cap_of: Vec<u32>,
    /// CSR row offsets into `fwd`, one per node plus a final sentinel.
    fwd_off: Vec<u32>,
    /// Packed forward edges: low 31 bits target id, high bit latency.
    fwd: Vec<u32>,
    /// CSR row offsets into `bwd`.
    bwd_off: Vec<u32>,
    /// Packed backward edges.
    bwd: Vec<u32>,
    /// Slots per `(pe, t)` in the padded table: `9 + rf_size`.
    slot_count: usize,
}

impl MrrgIndex {
    /// Builds the index of `spec` time-extended to `ii` cycles. Prefer
    /// [`MrrgIndex::shared`], which memoizes builds process-wide.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0`, if `rf_size > 256` (the `Reg(u8)` id space), or
    /// if the graph exceeds `2^31` nodes (the packed-edge id space).
    pub fn new(spec: CgraSpec, ii: usize) -> Self {
        assert!(spec.rf_size <= 256, "register file exceeds the Reg(u8) id space");
        let mrrg = Mrrg::new(spec, ii);
        let slot_count = 9 + mrrg.spec().rf_size;
        let padded = mrrg.spec().pe_count() * ii * slot_count;
        let node_count = mrrg.node_count();
        assert!((node_count as u64) < LAT_BIT as u64, "MRRG exceeds the 2^31 packed-edge id space");
        let mut idx_of = vec![INVALID; padded];
        let mut node_of = Vec::with_capacity(node_count);
        let mut cap_of = Vec::with_capacity(node_count);
        let mut index = MrrgIndex {
            mrrg,
            idx_of: Vec::new(),
            node_of: Vec::new(),
            cap_of: Vec::new(),
            fwd_off: Vec::new(),
            fwd: Vec::new(),
            bwd_off: Vec::new(),
            bwd: Vec::new(),
            slot_count,
        };
        // `nodes_iter` yields ascending RNode order, which is exactly the
        // padded (pe, t, slot) order — dense ids inherit the node order.
        for node in index.mrrg.nodes_iter() {
            idx_of[index.padded_index(node)] = node_of.len() as u32;
            cap_of.push(index.mrrg.spec().capacity(node.kind) as u32);
            node_of.push(node);
        }
        index.idx_of = idx_of;
        index.node_of = node_of;
        index.cap_of = cap_of;
        let (fwd_off, fwd) = index.build_csr(true);
        let (bwd_off, bwd) = index.build_csr(false);
        index.fwd_off = fwd_off;
        index.fwd = fwd;
        index.bwd_off = bwd_off;
        index.bwd = bwd;
        index
    }

    /// Rows of packed edges in legacy enumeration order, forward or
    /// backward. Latency is derived from the kind pair (`same_cycle`), the
    /// same rule [`Mrrg::edge_latency`] applies.
    ///
    /// Rows are independent and offsets are running sums, so the build
    /// shards into contiguous node ranges across threads and stitches the
    /// segments back with a prefix sum — byte-identical to a serial build
    /// (locked in by `sharded_csr_matches_serial_build`).
    fn build_csr(&self, forward: bool) -> (Vec<u32>, Vec<u32>) {
        let n = self.node_of.len();
        let threads = if n >= SHARD_THRESHOLD {
            std::thread::available_parallelism().map_or(1, usize::from).min(8)
        } else {
            1
        };
        self.build_csr_with(forward, threads)
    }

    /// [`build_csr`](Self::build_csr) with an explicit shard count.
    fn build_csr_with(&self, forward: bool, threads: usize) -> (Vec<u32>, Vec<u32>) {
        let n = self.node_of.len();
        let chunk = n.div_ceil(threads.max(1)).max(1);
        let shards: Vec<(Vec<u32>, Vec<u32>)> = if threads <= 1 || chunk >= n {
            vec![self.build_csr_range(forward, 0, n)]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..n)
                    .step_by(chunk)
                    .map(|lo| {
                        let hi = (lo + chunk).min(n);
                        scope.spawn(move || self.build_csr_range(forward, lo, hi))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap_or_else(|panic| std::panic::resume_unwind(panic)))
                    .collect()
            })
        };
        let total: usize = shards.iter().map(|(_, e)| e.len()).sum();
        assert!((total as u64) < u32::MAX as u64, "CSR edge count exceeds the u32 offset space");
        let mut off = Vec::with_capacity(n + 1);
        let mut edges = Vec::with_capacity(total);
        off.push(0u32);
        for (lens, shard_edges) in shards {
            let base = edges.len() as u32;
            off.extend(lens.iter().map(|&l| base + l));
            edges.extend_from_slice(&shard_edges);
        }
        (off, edges)
    }

    /// One shard of the CSR build: rows `lo..hi` of the dense node order,
    /// with offsets relative to the shard start (the stitcher rebases them
    /// onto the global edge array).
    fn build_csr_range(&self, forward: bool, lo: usize, hi: usize) -> (Vec<u32>, Vec<u32>) {
        let mut off = Vec::with_capacity(hi - lo);
        let mut edges = Vec::with_capacity((hi - lo) * 6);
        for &node in &self.node_of[lo..hi] {
            let mut push = |other: RNode| {
                let padded = self.padded_index(other);
                let id = self.idx_of[padded];
                debug_assert_ne!(id, INVALID, "{node:?} edge to unindexed {other:?}");
                debug_assert!(id < LAT_BIT, "dense id {id} collides with the latency bit");
                let (from, to) = if forward { (node, other) } else { (other, node) };
                let lat = if same_cycle(from.kind, to.kind) { 0 } else { LAT_BIT };
                edges.push(id | lat);
            };
            if forward {
                self.mrrg.for_each_successor(node, &mut push);
            } else {
                self.mrrg.for_each_predecessor(node, &mut push);
            }
            off.push(edges.len() as u32);
        }
        (off, edges)
    }

    /// The process-wide shared index for `(spec, ii)`, building it on first
    /// use. All candidate-walk threads, the replication pass and the
    /// verifier end up borrowing one build through this cache.
    pub fn shared(spec: CgraSpec, ii: usize) -> Arc<MrrgIndex> {
        // `CgraSpec` holds an `f64`, so no `Hash`/`Eq`: the cache is a small
        // LRU vector scanned linearly. Builds happen under the lock so a
        // thundering herd of candidate threads triggers exactly one build.
        static CACHE: OnceLock<Mutex<Vec<Arc<MrrgIndex>>>> = OnceLock::new();
        const CACHE_CAP: usize = 32;
        let cache = CACHE.get_or_init(|| Mutex::new(Vec::new()));
        let mut entries = match cache.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(pos) = entries.iter().position(|e| e.mrrg.ii() == ii && *e.mrrg.spec() == spec)
        {
            let hit = entries.remove(pos);
            entries.push(Arc::clone(&hit)); // most-recently-used at the back
            return hit;
        }
        let built = Arc::new(MrrgIndex::new(spec, ii));
        if entries.len() >= CACHE_CAP {
            entries.remove(0);
        }
        entries.push(Arc::clone(&built));
        built
    }

    /// The implicit graph this index was compiled from.
    pub fn mrrg(&self) -> &Mrrg {
        &self.mrrg
    }

    /// The architecture.
    pub fn spec(&self) -> &CgraSpec {
        self.mrrg.spec()
    }

    /// The initiation interval.
    pub fn ii(&self) -> usize {
        self.mrrg.ii()
    }

    /// Number of indexed nodes (equals [`Mrrg::node_count`]).
    pub fn len(&self) -> usize {
        self.node_of.len()
    }

    /// Memory footprint of the compiled tables.
    pub fn memory_stats(&self) -> MemoryStats {
        let u32s = self.idx_of.len()
            + self.cap_of.len()
            + self.fwd_off.len()
            + self.fwd.len()
            + self.bwd_off.len()
            + self.bwd.len();
        MemoryStats {
            nodes: self.node_of.len(),
            edges: self.fwd.len(),
            bytes: u32s * std::mem::size_of::<u32>()
                + self.node_of.len() * std::mem::size_of::<RNode>(),
        }
    }

    /// `true` when the graph has no nodes (never for a valid CGRA).
    pub fn is_empty(&self) -> bool {
        self.node_of.is_empty()
    }

    #[inline]
    fn slot(&self, kind: RKind) -> usize {
        let rf = self.mrrg.spec().rf_size;
        match kind {
            RKind::Fu => 0,
            RKind::Out => 1,
            RKind::Wire(d) => 2 + d.index(),
            RKind::Reg(r) => 6 + r as usize,
            RKind::RegWr => 6 + rf,
            RKind::RegRd => 7 + rf,
            RKind::Mem => 8 + rf,
        }
    }

    /// Padded table position of a node known to lie inside the array.
    #[inline]
    fn padded_index(&self, node: RNode) -> usize {
        let spec = self.mrrg.spec();
        let pe = node.pe.x as usize * spec.cols + node.pe.y as usize;
        (pe * self.mrrg.ii() + node.t as usize) * self.slot_count + self.slot(node.kind)
    }

    /// The dense id of `node`, or `None` when it is not part of the graph.
    #[inline]
    pub fn index_of(&self, node: RNode) -> Option<RIdx> {
        if !self.mrrg.spec().contains(node.pe) || node.t as usize >= self.mrrg.ii() {
            return None;
        }
        if let RKind::Reg(r) = node.kind {
            if r as usize >= self.mrrg.spec().rf_size {
                return None;
            }
        }
        match self.idx_of[self.padded_index(node)] {
            INVALID => None,
            id => Some(RIdx(id)),
        }
    }

    /// `true` if `node` is part of the graph (equals [`Mrrg::contains`]).
    #[inline]
    pub fn contains(&self, node: RNode) -> bool {
        self.index_of(node).is_some()
    }

    /// The node a dense id denotes.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn node(&self, i: RIdx) -> RNode {
        self.node_of[i.index()]
    }

    /// All nodes in dense-id (= ascending [`RNode`]) order.
    pub fn nodes(&self) -> &[RNode] {
        &self.node_of
    }

    /// Signal capacity of the resource `i`.
    #[inline]
    pub fn capacity(&self, i: RIdx) -> usize {
        self.cap_of[i.index()] as usize
    }

    /// Forward edges of `i` as `(successor, latency)`, in the enumeration
    /// order of [`Mrrg::successors`].
    #[inline]
    pub fn successors(&self, i: RIdx) -> impl Iterator<Item = (RIdx, u32)> + '_ {
        let lo = self.fwd_off[i.index()] as usize;
        let hi = self.fwd_off[i.index() + 1] as usize;
        self.fwd[lo..hi].iter().map(|&w| (RIdx(w & !LAT_BIT), (w >> 31) & 1))
    }

    /// Backward edges of `i` as `(predecessor, latency)`, in the
    /// enumeration order of [`Mrrg::predecessors`].
    #[inline]
    pub fn predecessors(&self, i: RIdx) -> impl Iterator<Item = (RIdx, u32)> + '_ {
        let lo = self.bwd_off[i.index()] as usize;
        let hi = self.bwd_off[i.index() + 1] as usize;
        self.bwd[lo..hi].iter().map(|&w| (RIdx(w & !LAT_BIT), (w >> 31) & 1))
    }

    /// CSR lookup of the latency of edge `from → to` — the indexed form of
    /// [`Mrrg::edge_latency`], used by the hop-timing verifier.
    pub fn edge_latency(&self, from: RNode, to: RNode) -> Option<u32> {
        let fi = self.index_of(from)?;
        let ti = self.index_of(to)?;
        self.successors(fi).find(|&(s, _)| s == ti).map(|(_, lat)| lat)
    }
}

#[allow(clippy::unwrap_used, clippy::expect_used)]
#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn mrrg(c: usize, ii: usize) -> Mrrg {
        Mrrg::new(CgraSpec::square(c), ii)
    }

    #[test]
    fn fu_slots_counts() {
        let m = mrrg(4, 3);
        assert_eq!(m.fu_slots(), 48);
    }

    #[test]
    fn node_count_matches_enumeration() {
        for (c, ii) in [(1, 1), (2, 2), (3, 2)] {
            let m = mrrg(c, ii);
            assert_eq!(m.nodes().len(), m.node_count(), "c={c} ii={ii}");
        }
    }

    #[test]
    fn all_nodes_contained() {
        let m = mrrg(2, 3);
        for n in m.nodes() {
            assert!(m.contains(n), "{n:?}");
        }
    }

    #[test]
    fn nodes_are_sorted_and_iter_matches() {
        let m = mrrg(3, 2);
        let nodes = m.nodes();
        let mut sorted = nodes.clone();
        sorted.sort();
        assert_eq!(nodes, sorted, "enumeration must follow RNode order");
        let from_iter: Vec<_> = m.nodes_iter().collect();
        assert_eq!(nodes, from_iter);
    }

    #[test]
    fn into_variants_reuse_buffers() {
        let m = mrrg(2, 2);
        let mut buf = Vec::new();
        for n in m.nodes() {
            m.successors_into(n, &mut buf);
            assert_eq!(buf, m.successors(n), "{n:?}");
            m.predecessors_into(n, &mut buf);
            assert_eq!(buf, m.predecessors(n), "{n:?}");
        }
    }

    #[test]
    fn successors_stay_in_graph() {
        let m = mrrg(3, 2);
        for n in m.nodes() {
            for s in m.successors(n) {
                assert!(m.contains(s), "{n:?} -> {s:?}");
            }
            for p in m.predecessors(n) {
                assert!(m.contains(p), "{p:?} -> {n:?}");
            }
        }
    }

    #[test]
    fn successors_predecessors_are_inverse() {
        // Build the explicit edge set both ways and compare.
        let m = mrrg(2, 3);
        let mut fwd: HashSet<(RNode, RNode)> = HashSet::new();
        let mut bwd: HashSet<(RNode, RNode)> = HashSet::new();
        for n in m.nodes() {
            for s in m.successors(n) {
                fwd.insert((n, s));
            }
            for p in m.predecessors(n) {
                bwd.insert((p, n));
            }
        }
        let missing_bwd: Vec<_> = fwd.difference(&bwd).take(5).collect();
        let missing_fwd: Vec<_> = bwd.difference(&fwd).take(5).collect();
        assert!(missing_bwd.is_empty(), "in successors but not predecessors: {missing_bwd:?}");
        assert!(missing_fwd.is_empty(), "in predecessors but not successors: {missing_fwd:?}");
    }

    #[test]
    fn modulo_wraparound() {
        let m = mrrg(2, 2);
        let fu = RNode::new(PeId::new(0, 0), 1, RKind::Fu);
        let succs = m.successors(fu);
        // t = 1 wraps to t = 0.
        assert!(succs.contains(&RNode::new(PeId::new(0, 0), 0, RKind::Out)));
        assert!(succs.iter().all(|s| s.t < 2));
    }

    #[test]
    fn single_pe_has_no_wires() {
        let m = mrrg(1, 2);
        for n in m.nodes() {
            assert!(!matches!(n.kind, RKind::Wire(_)));
            for s in m.successors(n) {
                assert!(!matches!(s.kind, RKind::Wire(_)));
            }
        }
        // Same-PE dependent ops are still routable: Fu(0) -> Out(1) -> Fu(1).
        let fu0 = RNode::new(PeId::new(0, 0), 0, RKind::Fu);
        let out1 = RNode::new(PeId::new(0, 0), 1, RKind::Out);
        let fu1 = RNode::new(PeId::new(0, 0), 1, RKind::Fu);
        assert!(m.successors(fu0).contains(&out1));
        assert!(m.successors(out1).contains(&fu1));
    }

    #[test]
    fn wire_reaches_neighbor_fu_same_cycle() {
        let m = mrrg(2, 2);
        let w = RNode::new(PeId::new(0, 0), 1, RKind::Wire(Dir::South));
        let succs = m.successors(w);
        assert!(succs.contains(&RNode::new(PeId::new(1, 0), 1, RKind::Fu)));
        // Pass-through continues from the neighbor one cycle later.
        assert!(succs.contains(&RNode::new(PeId::new(1, 0), 0, RKind::Wire(Dir::East))));
    }

    #[test]
    fn one_cycle_per_hop() {
        // Fu(0,0)@t0 -> Wire(S)@t1 -> Fu(1,0)@t1: neighbor consumes at t+1.
        let m = mrrg(2, 4);
        let fu = RNode::new(PeId::new(0, 0), 0, RKind::Fu);
        let wire = RNode::new(PeId::new(0, 0), 1, RKind::Wire(Dir::South));
        assert!(m.successors(fu).contains(&wire));
        assert!(m.successors(wire).contains(&RNode::new(PeId::new(1, 0), 1, RKind::Fu)));
    }

    #[test]
    fn mem_is_pure_source() {
        let m = mrrg(2, 2);
        let mem = RNode::new(PeId::new(0, 0), 0, RKind::Mem);
        assert!(m.predecessors(mem).is_empty());
        assert!(m.successors(mem).contains(&RNode::new(PeId::new(0, 0), 0, RKind::Fu)));
    }

    #[test]
    fn sharded_csr_matches_serial_build() {
        // Force the sharded path on a small graph and compare against the
        // serial reference — stitching must be byte-identical, including
        // the degenerate split where shards outnumber rows.
        let idx = MrrgIndex::new(CgraSpec::square(4), 3);
        for forward in [true, false] {
            let (serial_off, serial_edges) = idx.build_csr_with(forward, 1);
            for threads in [2, 3, 8, 64] {
                let (off, edges) = idx.build_csr_with(forward, threads);
                assert_eq!(off, serial_off, "forward={forward} threads={threads}");
                assert_eq!(edges, serial_edges, "forward={forward} threads={threads}");
            }
        }
    }

    #[test]
    fn mega_fabric_ids_stay_in_u32_range() {
        // 64x64 at every II the pipeline realistically probes: dense ids
        // must stay below the packed-edge latency bit, which is what lets
        // the CSR pack (id | latency) into one u32.
        let spec = CgraSpec::square(64);
        for ii in [1usize, 4, 8, 16] {
            let m = Mrrg::new(spec.clone(), ii);
            assert!(
                (m.node_count() as u64) < LAT_BIT as u64,
                "64x64 II={ii}: {} nodes overflow the packed-edge id space",
                m.node_count()
            );
        }
    }

    #[test]
    fn memory_stats_report_the_dense_tables() {
        let idx = MrrgIndex::new(CgraSpec::square(4), 2);
        let stats = idx.memory_stats();
        assert_eq!(stats.nodes, idx.len());
        assert_eq!(stats.edges, idx.fwd.len());
        assert!(stats.bytes >= (stats.edges * 2 + stats.nodes) * 4, "{stats:?}");
        let bigger = MrrgIndex::new(CgraSpec::square(4), 3).memory_stats();
        assert!(bigger.nodes > stats.nodes && bigger.bytes > stats.bytes);
        let hw = stats.max(bigger);
        assert_eq!(hw, bigger.max(stats));
        assert_eq!(hw.nodes, bigger.nodes);
    }

    #[test]
    fn capacities() {
        assert_eq!(RKind::Fu.capacity(), 1);
        assert_eq!(RKind::Wire(Dir::North).capacity(), 1);
        assert_eq!(RKind::Reg(0).capacity(), 1);
        assert_eq!(RKind::Mem.capacity(), 2);
    }

    #[test]
    #[should_panic(expected = "initiation interval")]
    fn zero_ii_panics() {
        let _ = Mrrg::new(CgraSpec::square(2), 0);
    }

    #[test]
    fn edge_latencies_match_timing_model() {
        let m = mrrg(2, 4);
        let pe = PeId::new(0, 0);
        // Clocked hops cost one cycle.
        let fu = RNode::new(pe, 0, RKind::Fu);
        let out = RNode::new(pe, 1, RKind::Out);
        assert_eq!(m.edge_latency(fu, out), Some(1));
        assert_eq!(m.edge_latency(out, RNode::new(pe, 2, RKind::Out)), Some(1));
        // Same-cycle crossbar feeds cost zero.
        assert_eq!(m.edge_latency(out, RNode::new(pe, 1, RKind::Fu)), Some(0));
        let wire = RNode::new(pe, 1, RKind::Wire(Dir::South));
        assert_eq!(m.edge_latency(fu, wire), Some(1));
        assert_eq!(m.edge_latency(wire, RNode::new(PeId::new(1, 0), 1, RKind::Fu)), Some(0));
        let regwr = RNode::new(pe, 1, RKind::RegWr);
        let reg = RNode::new(pe, 1, RKind::Reg(0));
        let regrd = RNode::new(pe, 1, RKind::RegRd);
        assert_eq!(m.edge_latency(fu, regwr), Some(1));
        assert_eq!(m.edge_latency(regwr, reg), Some(0));
        assert_eq!(m.edge_latency(reg, regrd), Some(0));
        assert_eq!(m.edge_latency(regrd, RNode::new(pe, 1, RKind::Fu)), Some(0));
        assert_eq!(m.edge_latency(reg, RNode::new(pe, 2, RKind::Reg(0))), Some(1));
        // Non-edges and out-of-graph nodes report none.
        assert_eq!(m.edge_latency(fu, RNode::new(pe, 3, RKind::Out)), None);
        assert_eq!(m.edge_latency(fu, RNode::new(PeId::new(5, 5), 1, RKind::Out)), None);
        assert!(!m.is_edge(fu, RNode::new(pe, 0, RKind::Fu)));
    }

    #[test]
    fn at_ii_one_latency_is_kind_derived() {
        // With II = 1 every t field is 0; only the kind pair can tell a
        // 1-cycle hop from a same-cycle feed.
        let m = Mrrg::new(CgraSpec::square(2), 1);
        let pe = PeId::new(0, 0);
        let fu = RNode::new(pe, 0, RKind::Fu);
        let out = RNode::new(pe, 0, RKind::Out);
        assert_eq!(m.edge_latency(fu, out), Some(1));
        assert_eq!(m.edge_latency(out, fu), Some(0));
    }

    #[test]
    fn index_ids_follow_node_order() {
        let idx = MrrgIndex::new(CgraSpec::square(3), 2);
        let nodes = idx.mrrg().nodes();
        assert_eq!(idx.len(), nodes.len());
        assert_eq!(idx.nodes(), &nodes[..]);
        for (i, &n) in nodes.iter().enumerate() {
            assert_eq!(idx.index_of(n), Some(RIdx(i as u32)), "{n:?}");
            assert_eq!(idx.node(RIdx(i as u32)), n);
            assert_eq!(idx.capacity(RIdx(i as u32)), idx.spec().capacity(n.kind));
        }
    }

    #[test]
    fn index_rejects_foreign_nodes() {
        let idx = MrrgIndex::new(CgraSpec::square(2), 2);
        // Outside the array, outside the window, dangling wire, missing reg.
        assert_eq!(idx.index_of(RNode::new(PeId::new(9, 0), 0, RKind::Fu)), None);
        assert_eq!(idx.index_of(RNode::new(PeId::new(0, 0), 2, RKind::Fu)), None);
        assert_eq!(idx.index_of(RNode::new(PeId::new(0, 0), 0, RKind::Wire(Dir::North))), None);
        assert_eq!(idx.index_of(RNode::new(PeId::new(0, 0), 0, RKind::Reg(200))), None);
        assert!(!idx.contains(RNode::new(PeId::new(9, 0), 0, RKind::Fu)));
        assert!(idx.contains(RNode::new(PeId::new(0, 0), 0, RKind::Fu)));
    }

    #[test]
    fn index_adjacency_matches_legacy() {
        let m = mrrg(2, 3);
        let idx = MrrgIndex::new(m.spec().clone(), m.ii());
        for n in m.nodes() {
            let i = idx.index_of(n).unwrap();
            let fwd: Vec<RNode> = idx.successors(i).map(|(s, _)| idx.node(s)).collect();
            assert_eq!(fwd, m.successors(n), "successors of {n:?}");
            let bwd: Vec<RNode> = idx.predecessors(i).map(|(p, _)| idx.node(p)).collect();
            assert_eq!(bwd, m.predecessors(n), "predecessors of {n:?}");
            for (s, lat) in idx.successors(i) {
                assert_eq!(Some(lat), m.edge_latency(n, idx.node(s)), "{n:?}");
            }
            for (p, lat) in idx.predecessors(i) {
                assert_eq!(Some(lat), m.edge_latency(idx.node(p), n), "{n:?}");
            }
        }
    }

    #[test]
    fn index_edge_latency_matches_legacy_at_ii_one() {
        // II = 1 is the case where latency cannot be derived from t fields.
        let m = Mrrg::new(CgraSpec::square(2), 1);
        let idx = MrrgIndex::new(m.spec().clone(), 1);
        let pe = PeId::new(0, 0);
        let fu = RNode::new(pe, 0, RKind::Fu);
        let out = RNode::new(pe, 0, RKind::Out);
        assert_eq!(idx.edge_latency(fu, out), Some(1));
        assert_eq!(idx.edge_latency(out, fu), Some(0));
        assert_eq!(idx.edge_latency(fu, fu), None);
    }

    #[test]
    fn faulted_resources_vanish_from_graph_and_index() {
        let mut faults = crate::FaultMap::new();
        faults
            .kill_pe(PeId::new(1, 1))
            .sever_link(PeId::new(0, 0), Dir::East)
            .disable_reg(PeId::new(0, 1), 1)
            .disable_mem(PeId::new(2, 2));
        let spec = CgraSpec::square(3).with_faults(faults);
        let m = Mrrg::new(spec.clone(), 2);
        assert_eq!(m.nodes().len(), m.node_count());
        assert!(!m.contains(RNode::new(PeId::new(1, 1), 0, RKind::Fu)));
        assert!(!m.contains(RNode::new(PeId::new(0, 0), 1, RKind::Wire(Dir::East))));
        assert!(!m.contains(RNode::new(PeId::new(0, 1), 0, RKind::Reg(1))));
        assert!(!m.contains(RNode::new(PeId::new(2, 2), 1, RKind::Mem)));
        for n in m.nodes() {
            assert!(!spec.faults.masks(&spec, n), "masked node enumerated: {n:?}");
            for s in m.successors(n) {
                assert!(m.contains(s), "{n:?} -> masked {s:?}");
            }
            for p in m.predecessors(n) {
                assert!(m.contains(p), "masked {p:?} -> {n:?}");
            }
        }
        // The dense index agrees node-for-node and edge-for-edge.
        let idx = MrrgIndex::new(spec, 2);
        assert_eq!(idx.len(), m.node_count());
        assert_eq!(idx.index_of(RNode::new(PeId::new(1, 1), 0, RKind::Fu)), None);
        for n in m.nodes() {
            let i = idx.index_of(n).unwrap();
            let fwd: Vec<RNode> = idx.successors(i).map(|(s, _)| idx.node(s)).collect();
            assert_eq!(fwd, m.successors(n), "successors of {n:?}");
            let bwd: Vec<RNode> = idx.predecessors(i).map(|(p, _)| idx.node(p)).collect();
            assert_eq!(bwd, m.predecessors(n), "predecessors of {n:?}");
        }
    }

    #[test]
    fn route_only_pe_loses_fu_and_out_but_keeps_routing_fabric() {
        let mut caps = crate::CapabilityMap::new();
        caps.set_classes(PeId::new(1, 1), &[crate::OpClass::Route]);
        let spec = CgraSpec::square(3).with_faults(caps);
        let m = Mrrg::new(spec.clone(), 2);
        assert_eq!(m.nodes().len(), m.node_count());
        for t in 0..2 {
            assert!(!m.contains(RNode::new(PeId::new(1, 1), t, RKind::Fu)));
            assert!(!m.contains(RNode::new(PeId::new(1, 1), t, RKind::Out)));
            assert!(!m.contains(RNode::new(PeId::new(1, 1), t, RKind::Mem)));
            // Routing resources survive: wires, registers, ports.
            assert!(m.contains(RNode::new(PeId::new(1, 1), t, RKind::Wire(Dir::East))));
            assert!(m.contains(RNode::new(PeId::new(1, 1), t, RKind::Reg(0))));
            assert!(m.contains(RNode::new(PeId::new(1, 1), t, RKind::RegWr)));
        }
        // Enumeration never references a masked node, and the index agrees.
        let idx = MrrgIndex::new(spec.clone(), 2);
        assert_eq!(idx.len(), m.node_count());
        for n in m.nodes() {
            assert!(!spec.faults.masks(&spec, n), "masked node enumerated: {n:?}");
            for s in m.successors(n) {
                assert!(m.contains(s), "{n:?} -> masked {s:?}");
            }
        }
    }

    #[test]
    fn fault_only_capability_map_reproduces_fault_model_node_set() {
        // PR-compat pin: a map built only from fault builders produces the
        // exact node set the pre-capability fault model produced — the Fu |
        // Out arm of masks() must stay inert without class restrictions.
        let mut faults = crate::FaultMap::new();
        faults.kill_pe(PeId::new(0, 2)).disable_mem(PeId::new(1, 0));
        let spec = CgraSpec::square(3).with_faults(faults);
        let pristine = spec.fault_free();
        let m = Mrrg::new(spec.clone(), 2);
        let full = Mrrg::new(pristine, 2);
        for n in full.nodes() {
            let expect_gone = spec.faults.pe_dead(n.pe)
                || (n.kind == RKind::Mem && spec.faults.mem_disabled(n.pe))
                || matches!(n.kind, RKind::Wire(d)
                    if spec.neighbor(n.pe, d).is_some_and(|nb| spec.faults.pe_dead(nb)));
            assert_eq!(m.contains(n), !expect_gone, "{n:?}");
        }
    }

    #[test]
    fn shared_cache_distinguishes_capability_maps() {
        let pristine = CgraSpec::square(2);
        let restricted =
            pristine.clone().with_faults(crate::CapabilityMap::corner_multipliers(2, 2));
        // corner_multipliers on 2×2 restricts nothing (all PEs are corners);
        // build a real restriction instead.
        assert!(restricted.faults.is_empty());
        let mut caps = crate::CapabilityMap::new();
        caps.set_classes(PeId::new(0, 0), &[crate::OpClass::Route]);
        let restricted = pristine.clone().with_faults(caps);
        let a = MrrgIndex::shared(pristine, 2);
        let b = MrrgIndex::shared(restricted, 2);
        assert!(!Arc::ptr_eq(&a, &b), "capability maps are part of the cache key");
        assert!(b.len() < a.len(), "masking Fu/Out/Mem must shrink the graph");
    }

    #[test]
    fn shared_cache_distinguishes_fault_maps() {
        let pristine = CgraSpec::square(2);
        let mut faults = crate::FaultMap::new();
        faults.kill_pe(PeId::new(0, 1));
        let faulted = pristine.clone().with_faults(faults);
        let a = MrrgIndex::shared(pristine, 2);
        let b = MrrgIndex::shared(faulted, 2);
        assert!(!Arc::ptr_eq(&a, &b), "fault maps are part of the cache key");
        assert!(b.len() < a.len(), "masking must shrink the graph");
    }

    #[test]
    fn shared_cache_returns_same_build() {
        let a = MrrgIndex::shared(CgraSpec::square(2), 3);
        let b = MrrgIndex::shared(CgraSpec::square(2), 3);
        assert!(Arc::ptr_eq(&a, &b), "same (spec, II) must share one build");
        let c = MrrgIndex::shared(CgraSpec::square(2), 4);
        assert!(!Arc::ptr_eq(&a, &c), "different II is a different graph");
    }
}
