//! Virtual Systolic Array clustering (`G → G'` of §IV).
//!
//! A [`Vsa`] partitions the CGRA PE array into a grid of `s1 × s2`
//! sub-CGRAs; each partition is one *systolic PE* (SPE). HiMap places loop
//! iterations on SPEs and replicates the detailed sub-CGRA mapping inside
//! each one.

use std::error::Error;
use std::fmt;

use crate::arch::{CgraSpec, PeId};

/// Coordinates of a systolic PE in the VSA grid.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpeId {
    /// Row in the VSA grid.
    pub x: u16,
    /// Column in the VSA grid.
    pub y: u16,
}

impl SpeId {
    /// Creates an SPE coordinate.
    pub fn new(x: usize, y: usize) -> Self {
        SpeId { x: x as u16, y: y as u16 }
    }
}

impl fmt::Debug for SpeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spe({},{})", self.x, self.y)
    }
}

impl fmt::Display for SpeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{}]", self.x, self.y)
    }
}

/// Error constructing a [`Vsa`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VsaError {
    /// Sub-CGRA dimensions must be non-zero.
    EmptySubCgra,
    /// The sub-CGRA does not tile the array evenly.
    NotDivisible {
        /// CGRA rows.
        rows: usize,
        /// CGRA columns.
        cols: usize,
        /// Sub-CGRA rows `s1`.
        s1: usize,
        /// Sub-CGRA columns `s2`.
        s2: usize,
    },
    /// No dead-PE-free rectangle of the array fits even one sub-CGRA.
    NoFaultFreeRegion {
        /// CGRA rows.
        rows: usize,
        /// CGRA columns.
        cols: usize,
        /// Sub-CGRA rows `s1`.
        s1: usize,
        /// Sub-CGRA columns `s2`.
        s2: usize,
    },
}

impl fmt::Display for VsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VsaError::EmptySubCgra => write!(f, "sub-CGRA dimensions must be non-zero"),
            VsaError::NotDivisible { rows, cols, s1, s2 } => {
                write!(f, "{s1}x{s2} sub-CGRA does not tile a {rows}x{cols} CGRA")
            }
            VsaError::NoFaultFreeRegion { rows, cols, s1, s2 } => {
                write!(f, "no fault-free region of a {rows}x{cols} CGRA fits a {s1}x{s2} sub-CGRA")
            }
        }
    }
}

impl Error for VsaError {}

/// The CGRA clustered into a grid of `s1 × s2` sub-CGRAs.
///
/// # Example
///
/// ```
/// use himap_cgra::{CgraSpec, PeId, SpeId, Vsa};
///
/// # fn main() -> Result<(), himap_cgra::VsaError> {
/// // The paper's motivating example: an 8x1 CGRA clustered into a 4x1 VSA
/// // of 2x1 sub-CGRAs.
/// let vsa = Vsa::new(CgraSpec::mesh(8, 1).unwrap(), 2, 1)?;
/// assert_eq!((vsa.rows(), vsa.cols()), (4, 1));
/// assert_eq!(vsa.spe_of(PeId::new(5, 0)), SpeId::new(2, 0));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Vsa {
    spec: CgraSpec,
    s1: usize,
    s2: usize,
    rows: usize,
    cols: usize,
    /// North-west physical corner of the VSA region: `(0, 0)` on a fabric
    /// without dead PEs; otherwise the anchor of the best dead-PE-free
    /// rectangle.
    origin: PeId,
}

impl Vsa {
    /// Clusters `spec` into `s1 × s2` sub-CGRAs.
    ///
    /// Every SPE hosts live loop iterations, so dead PEs cannot be routed
    /// around *inside* the VSA — instead the VSA is anchored on the
    /// dead-PE-free rectangle that fits the most `s1 × s2` sub-CGRAs (ties
    /// broken deterministically by scan order). Other fault classes (severed
    /// links, disabled registers or memory banks) stay inside the region and
    /// are avoided by MRRG masking during routing.
    ///
    /// # Errors
    ///
    /// Returns [`VsaError`] if `s1`/`s2` are zero, do not divide the array
    /// dimensions (fabrics without dead PEs), or no dead-PE-free rectangle
    /// fits a single sub-CGRA.
    pub fn new(spec: CgraSpec, s1: usize, s2: usize) -> Result<Self, VsaError> {
        if s1 == 0 || s2 == 0 {
            return Err(VsaError::EmptySubCgra);
        }
        if !spec.faults.has_dead_pes() {
            if !spec.rows.is_multiple_of(s1) || !spec.cols.is_multiple_of(s2) {
                return Err(VsaError::NotDivisible { rows: spec.rows, cols: spec.cols, s1, s2 });
            }
            let rows = spec.rows / s1;
            let cols = spec.cols / s2;
            return Ok(Vsa { spec, s1, s2, rows, cols, origin: PeId::new(0, 0) });
        }
        // For every row pair (r0, r1) keep per-column "all rows healthy"
        // flags incrementally; each maximal healthy run is a candidate
        // rectangle. O(rows² · cols), deterministic first-best tie-break.
        let (rows, cols) = (spec.rows, spec.cols);
        let mut best: Option<(usize, PeId, usize, usize)> = None;
        let mut alive = vec![true; cols];
        for r0 in 0..rows {
            alive.iter_mut().for_each(|a| *a = true);
            for r1 in r0..rows {
                for (c, slot) in alive.iter_mut().enumerate() {
                    *slot = *slot && !spec.faults.pe_dead(PeId::new(r1, c));
                }
                let vrows = (r1 - r0 + 1) / s1;
                if vrows == 0 {
                    continue;
                }
                let mut c = 0;
                while c < cols {
                    if !alive[c] {
                        c += 1;
                        continue;
                    }
                    let start = c;
                    while c < cols && alive[c] {
                        c += 1;
                    }
                    let vcols = (c - start) / s2;
                    if vcols == 0 {
                        continue;
                    }
                    let usable = vrows * vcols;
                    if best.as_ref().is_none_or(|&(u, ..)| usable > u) {
                        best = Some((usable, PeId::new(r0, start), vrows, vcols));
                    }
                }
            }
        }
        match best {
            Some((_, origin, vrows, vcols)) => {
                Ok(Vsa { spec, s1, s2, rows: vrows, cols: vcols, origin })
            }
            None => Err(VsaError::NoFaultFreeRegion { rows, cols, s1, s2 }),
        }
    }

    /// The underlying CGRA.
    pub fn spec(&self) -> &CgraSpec {
        &self.spec
    }

    /// Sub-CGRA rows `s1`.
    pub fn sub_rows(&self) -> usize {
        self.s1
    }

    /// Sub-CGRA columns `s2`.
    pub fn sub_cols(&self) -> usize {
        self.s2
    }

    /// A standalone spec describing one sub-CGRA `G''` (used by `MAP()`).
    /// Faults are stripped: the relative mapping is position-agnostic, and
    /// replication lands it only on the fault-masked physical MRRG.
    pub fn sub_spec(&self) -> CgraSpec {
        CgraSpec { rows: self.s1, cols: self.s2, ..self.spec.fault_free() }
    }

    /// The physical PE at the north-west corner of the VSA region.
    pub fn origin(&self) -> PeId {
        self.origin
    }

    /// `true` if `pe` lies inside the (possibly cropped) VSA region.
    pub fn contains_pe(&self, pe: PeId) -> bool {
        let (x, y) = (pe.x as usize, pe.y as usize);
        let (ox, oy) = (self.origin.x as usize, self.origin.y as usize);
        x >= ox && x < ox + self.rows * self.s1 && y >= oy && y < oy + self.cols * self.s2
    }

    /// VSA grid rows (`c / s1`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// VSA grid columns (`c / s2`).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of SPEs.
    pub fn spe_count(&self) -> usize {
        self.rows * self.cols
    }

    /// The SPE containing a physical PE.
    ///
    /// # Panics
    ///
    /// Panics if `pe` is outside the VSA region.
    pub fn spe_of(&self, pe: PeId) -> SpeId {
        assert!(self.contains_pe(pe), "{pe:?} outside VSA region");
        SpeId {
            x: (pe.x - self.origin.x) / self.s1 as u16,
            y: (pe.y - self.origin.y) / self.s2 as u16,
        }
    }

    /// `true` if `spe` lies inside the VSA grid.
    pub fn contains_spe(&self, spe: SpeId) -> bool {
        (spe.x as usize) < self.rows && (spe.y as usize) < self.cols
    }

    /// The physical PE at local coordinates `local` inside `spe`.
    ///
    /// # Panics
    ///
    /// Panics if `spe` is outside the VSA or `local` outside the sub-CGRA.
    pub fn pe_at(&self, spe: SpeId, local: PeId) -> PeId {
        assert!(self.contains_spe(spe), "{spe:?} outside VSA");
        assert!(
            (local.x as usize) < self.s1 && (local.y as usize) < self.s2,
            "{local:?} outside {}x{} sub-CGRA",
            self.s1,
            self.s2
        );
        PeId {
            x: self.origin.x + spe.x * self.s1 as u16 + local.x,
            y: self.origin.y + spe.y * self.s2 as u16 + local.y,
        }
    }

    /// The local coordinates of a physical PE within its SPE.
    ///
    /// # Panics
    ///
    /// Panics if `pe` is outside the VSA region.
    pub fn local_of(&self, pe: PeId) -> PeId {
        assert!(self.contains_pe(pe), "{pe:?} outside VSA region");
        PeId {
            x: (pe.x - self.origin.x) % self.s1 as u16,
            y: (pe.y - self.origin.y) % self.s2 as u16,
        }
    }

    /// Iterates over all SPE coordinates in row-major order.
    pub fn spes(&self) -> impl Iterator<Item = SpeId> + '_ {
        (0..self.rows).flat_map(move |x| (0..self.cols).map(move |y| SpeId::new(x, y)))
    }
}

#[allow(clippy::unwrap_used, clippy::expect_used)]
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiles_evenly() {
        let vsa = Vsa::new(CgraSpec::square(8), 2, 4).unwrap();
        assert_eq!(vsa.rows(), 4);
        assert_eq!(vsa.cols(), 2);
        assert_eq!(vsa.spe_count(), 8);
        assert_eq!(vsa.sub_spec().pe_count(), 8);
    }

    #[test]
    fn rejects_bad_tilings() {
        assert_eq!(
            Vsa::new(CgraSpec::square(8), 3, 1).unwrap_err(),
            VsaError::NotDivisible { rows: 8, cols: 8, s1: 3, s2: 1 }
        );
        assert_eq!(Vsa::new(CgraSpec::square(8), 0, 1).unwrap_err(), VsaError::EmptySubCgra);
    }

    #[test]
    fn coordinate_roundtrip() {
        let vsa = Vsa::new(CgraSpec::square(6), 2, 3).unwrap();
        for pe in vsa.spec().pes().collect::<Vec<_>>() {
            let spe = vsa.spe_of(pe);
            let local = vsa.local_of(pe);
            assert_eq!(vsa.pe_at(spe, local), pe);
        }
    }

    #[test]
    fn paper_linear_example() {
        // §II: 8x1 CGRA, 2x1 sub-CGRAs, 4x1 VSA.
        let vsa = Vsa::new(CgraSpec::mesh(8, 1).unwrap(), 2, 1).unwrap();
        assert_eq!((vsa.rows(), vsa.cols()), (4, 1));
        assert_eq!(vsa.spe_of(PeId::new(0, 0)), SpeId::new(0, 0));
        assert_eq!(vsa.spe_of(PeId::new(7, 0)), SpeId::new(3, 0));
        assert_eq!(vsa.pe_at(SpeId::new(3, 0), PeId::new(1, 0)), PeId::new(7, 0));
    }

    #[test]
    fn paper_gemm_example() {
        // §V Fig. 5: 2x2 CGRA, 1x1 sub-CGRA, 2x2 VSA.
        let vsa = Vsa::new(CgraSpec::square(2), 1, 1).unwrap();
        assert_eq!(vsa.spe_count(), 4);
        for pe in vsa.spec().pes().collect::<Vec<_>>() {
            assert_eq!(vsa.spe_of(pe), SpeId { x: pe.x, y: pe.y });
        }
    }

    #[test]
    fn crops_around_dead_pes() {
        // Killing (0,0) on an 8x8 with 2x2 sub-CGRAs: the 8-row slab east of
        // column 0 fits 4x3 sub-CGRAs (12), found before the 7x8 slab south
        // of row 0 (also 12) — first-best scan order is the tie-break.
        let mut faults = crate::FaultMap::new();
        faults.kill_pe(PeId::new(0, 0));
        let vsa = Vsa::new(CgraSpec::square(8).with_faults(faults), 2, 2).unwrap();
        assert_eq!(vsa.origin(), PeId::new(0, 1));
        assert_eq!((vsa.rows(), vsa.cols()), (4, 3));
        assert!(!vsa.contains_pe(PeId::new(0, 0)));
        for spe in vsa.spes().collect::<Vec<_>>() {
            for lx in 0..2 {
                for ly in 0..2 {
                    let pe = vsa.pe_at(spe, PeId::new(lx, ly));
                    assert!(vsa.spec().healthy(pe), "{pe:?} in VSA region");
                    assert_eq!(vsa.spe_of(pe), spe);
                    assert_eq!(vsa.local_of(pe), PeId::new(lx, ly));
                }
            }
        }
        assert!(vsa.sub_spec().faults.is_empty(), "sub-CGRA probing is fault-free");
    }

    #[test]
    fn fully_dead_array_has_no_region() {
        let mut faults = crate::FaultMap::new();
        for pe in CgraSpec::square(2).pes() {
            faults.kill_pe(pe);
        }
        assert_eq!(
            Vsa::new(CgraSpec::square(2).with_faults(faults), 1, 1).unwrap_err(),
            VsaError::NoFaultFreeRegion { rows: 2, cols: 2, s1: 1, s2: 1 }
        );
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn pe_at_validates_local() {
        let vsa = Vsa::new(CgraSpec::square(4), 2, 2).unwrap();
        let _ = vsa.pe_at(SpeId::new(0, 0), PeId::new(2, 0));
    }
}
