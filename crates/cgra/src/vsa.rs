//! Virtual Systolic Array clustering (`G → G'` of §IV).
//!
//! A [`Vsa`] partitions the CGRA PE array into a grid of `s1 × s2`
//! sub-CGRAs; each partition is one *systolic PE* (SPE). HiMap places loop
//! iterations on SPEs and replicates the detailed sub-CGRA mapping inside
//! each one.

use std::error::Error;
use std::fmt;

use crate::arch::{CgraSpec, PeId};

/// Coordinates of a systolic PE in the VSA grid.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpeId {
    /// Row in the VSA grid.
    pub x: u16,
    /// Column in the VSA grid.
    pub y: u16,
}

impl SpeId {
    /// Creates an SPE coordinate.
    pub fn new(x: usize, y: usize) -> Self {
        SpeId { x: x as u16, y: y as u16 }
    }
}

impl fmt::Debug for SpeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spe({},{})", self.x, self.y)
    }
}

impl fmt::Display for SpeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{}]", self.x, self.y)
    }
}

/// Error constructing a [`Vsa`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VsaError {
    /// Sub-CGRA dimensions must be non-zero.
    EmptySubCgra,
    /// The sub-CGRA does not tile the array evenly.
    NotDivisible {
        /// CGRA rows.
        rows: usize,
        /// CGRA columns.
        cols: usize,
        /// Sub-CGRA rows `s1`.
        s1: usize,
        /// Sub-CGRA columns `s2`.
        s2: usize,
    },
}

impl fmt::Display for VsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VsaError::EmptySubCgra => write!(f, "sub-CGRA dimensions must be non-zero"),
            VsaError::NotDivisible { rows, cols, s1, s2 } => {
                write!(f, "{s1}x{s2} sub-CGRA does not tile a {rows}x{cols} CGRA")
            }
        }
    }
}

impl Error for VsaError {}

/// The CGRA clustered into a grid of `s1 × s2` sub-CGRAs.
///
/// # Example
///
/// ```
/// use himap_cgra::{CgraSpec, PeId, SpeId, Vsa};
///
/// # fn main() -> Result<(), himap_cgra::VsaError> {
/// // The paper's motivating example: an 8x1 CGRA clustered into a 4x1 VSA
/// // of 2x1 sub-CGRAs.
/// let vsa = Vsa::new(CgraSpec::mesh(8, 1).unwrap(), 2, 1)?;
/// assert_eq!((vsa.rows(), vsa.cols()), (4, 1));
/// assert_eq!(vsa.spe_of(PeId::new(5, 0)), SpeId::new(2, 0));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Vsa {
    spec: CgraSpec,
    s1: usize,
    s2: usize,
    rows: usize,
    cols: usize,
}

impl Vsa {
    /// Clusters `spec` into `s1 × s2` sub-CGRAs.
    ///
    /// # Errors
    ///
    /// Returns [`VsaError`] if `s1`/`s2` are zero or do not divide the array
    /// dimensions.
    pub fn new(spec: CgraSpec, s1: usize, s2: usize) -> Result<Self, VsaError> {
        if s1 == 0 || s2 == 0 {
            return Err(VsaError::EmptySubCgra);
        }
        if !spec.rows.is_multiple_of(s1) || !spec.cols.is_multiple_of(s2) {
            return Err(VsaError::NotDivisible { rows: spec.rows, cols: spec.cols, s1, s2 });
        }
        let rows = spec.rows / s1;
        let cols = spec.cols / s2;
        Ok(Vsa { spec, s1, s2, rows, cols })
    }

    /// The underlying CGRA.
    pub fn spec(&self) -> &CgraSpec {
        &self.spec
    }

    /// Sub-CGRA rows `s1`.
    pub fn sub_rows(&self) -> usize {
        self.s1
    }

    /// Sub-CGRA columns `s2`.
    pub fn sub_cols(&self) -> usize {
        self.s2
    }

    /// A standalone spec describing one sub-CGRA `G''` (used by `MAP()`).
    pub fn sub_spec(&self) -> CgraSpec {
        CgraSpec { rows: self.s1, cols: self.s2, ..self.spec.clone() }
    }

    /// VSA grid rows (`c / s1`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// VSA grid columns (`c / s2`).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of SPEs.
    pub fn spe_count(&self) -> usize {
        self.rows * self.cols
    }

    /// The SPE containing a physical PE.
    ///
    /// # Panics
    ///
    /// Panics if `pe` is outside the array.
    pub fn spe_of(&self, pe: PeId) -> SpeId {
        assert!(self.spec.contains(pe), "{pe:?} outside CGRA");
        SpeId { x: pe.x / self.s1 as u16, y: pe.y / self.s2 as u16 }
    }

    /// `true` if `spe` lies inside the VSA grid.
    pub fn contains_spe(&self, spe: SpeId) -> bool {
        (spe.x as usize) < self.rows && (spe.y as usize) < self.cols
    }

    /// The physical PE at local coordinates `local` inside `spe`.
    ///
    /// # Panics
    ///
    /// Panics if `spe` is outside the VSA or `local` outside the sub-CGRA.
    pub fn pe_at(&self, spe: SpeId, local: PeId) -> PeId {
        assert!(self.contains_spe(spe), "{spe:?} outside VSA");
        assert!(
            (local.x as usize) < self.s1 && (local.y as usize) < self.s2,
            "{local:?} outside {}x{} sub-CGRA",
            self.s1,
            self.s2
        );
        PeId { x: spe.x * self.s1 as u16 + local.x, y: spe.y * self.s2 as u16 + local.y }
    }

    /// The local coordinates of a physical PE within its SPE.
    pub fn local_of(&self, pe: PeId) -> PeId {
        assert!(self.spec.contains(pe), "{pe:?} outside CGRA");
        PeId { x: pe.x % self.s1 as u16, y: pe.y % self.s2 as u16 }
    }

    /// Iterates over all SPE coordinates in row-major order.
    pub fn spes(&self) -> impl Iterator<Item = SpeId> + '_ {
        (0..self.rows).flat_map(move |x| (0..self.cols).map(move |y| SpeId::new(x, y)))
    }
}

#[allow(clippy::unwrap_used, clippy::expect_used)]
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiles_evenly() {
        let vsa = Vsa::new(CgraSpec::square(8), 2, 4).unwrap();
        assert_eq!(vsa.rows(), 4);
        assert_eq!(vsa.cols(), 2);
        assert_eq!(vsa.spe_count(), 8);
        assert_eq!(vsa.sub_spec().pe_count(), 8);
    }

    #[test]
    fn rejects_bad_tilings() {
        assert_eq!(
            Vsa::new(CgraSpec::square(8), 3, 1).unwrap_err(),
            VsaError::NotDivisible { rows: 8, cols: 8, s1: 3, s2: 1 }
        );
        assert_eq!(Vsa::new(CgraSpec::square(8), 0, 1).unwrap_err(), VsaError::EmptySubCgra);
    }

    #[test]
    fn coordinate_roundtrip() {
        let vsa = Vsa::new(CgraSpec::square(6), 2, 3).unwrap();
        for pe in vsa.spec().pes().collect::<Vec<_>>() {
            let spe = vsa.spe_of(pe);
            let local = vsa.local_of(pe);
            assert_eq!(vsa.pe_at(spe, local), pe);
        }
    }

    #[test]
    fn paper_linear_example() {
        // §II: 8x1 CGRA, 2x1 sub-CGRAs, 4x1 VSA.
        let vsa = Vsa::new(CgraSpec::mesh(8, 1).unwrap(), 2, 1).unwrap();
        assert_eq!((vsa.rows(), vsa.cols()), (4, 1));
        assert_eq!(vsa.spe_of(PeId::new(0, 0)), SpeId::new(0, 0));
        assert_eq!(vsa.spe_of(PeId::new(7, 0)), SpeId::new(3, 0));
        assert_eq!(vsa.pe_at(SpeId::new(3, 0), PeId::new(1, 0)), PeId::new(7, 0));
    }

    #[test]
    fn paper_gemm_example() {
        // §V Fig. 5: 2x2 CGRA, 1x1 sub-CGRA, 2x2 VSA.
        let vsa = Vsa::new(CgraSpec::square(2), 1, 1).unwrap();
        assert_eq!(vsa.spe_count(), 4);
        for pe in vsa.spec().pes().collect::<Vec<_>>() {
            assert_eq!(vsa.spe_of(pe), SpeId { x: pe.x, y: pe.y });
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn pe_at_validates_local() {
        let vsa = Vsa::new(CgraSpec::square(4), 2, 2).unwrap();
        let _ = vsa.pe_at(SpeId::new(0, 0), PeId::new(2, 0));
    }
}
