//! Fault model: broken resources of a physical CGRA instance.
//!
//! A [`FaultMap`] records which parts of a fabricated array are unusable —
//! dead PEs, severed directional mesh links, disabled register-file slots
//! and disabled local data-memory banks. It lives on [`CgraSpec`], so every
//! consumer of the architecture description (MRRG enumeration, the dense
//! [`MrrgIndex`](crate::MrrgIndex), VSA clustering, the verifier, the
//! simulator) sees the same masked resource set: a faulted resource simply
//! does not exist in the routing graph, and the mapper routes around it
//! without any fault-specific logic of its own.

use std::collections::BTreeSet;
use std::fmt;

use crate::arch::{CgraSpec, Dir, PeId};
use crate::mrrg::{RKind, RNode};

/// The set of faulted resources of one CGRA instance.
///
/// An empty map (the [`Default`]) describes a pristine fabric and is free:
/// MRRG construction short-circuits every mask check behind one branch.
/// Ordered sets keep the map's `Debug`/iteration order — and therefore every
/// derived artifact — deterministic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultMap {
    /// PEs that are entirely unusable (ALU, RF, crossbar and memory).
    dead_pes: BTreeSet<PeId>,
    /// Severed directional links, keyed by the *source* PE and the outgoing
    /// direction. Severing `(pe, East)` kills the wire from `pe` to its east
    /// neighbour only; the opposite wire stays usable.
    severed_links: BTreeSet<(PeId, Dir)>,
    /// Disabled register-file slots `(pe, register index)`.
    disabled_regs: BTreeSet<(PeId, usize)>,
    /// PEs whose local data-memory bank is disabled (compute still works).
    disabled_mems: BTreeSet<PeId>,
}

impl FaultMap {
    /// An empty (fault-free) map.
    pub fn new() -> Self {
        FaultMap::default()
    }

    /// Marks `pe` as entirely dead.
    pub fn kill_pe(&mut self, pe: PeId) -> &mut Self {
        self.dead_pes.insert(pe);
        self
    }

    /// Severs the directional link leaving `pe` toward `dir`.
    pub fn sever_link(&mut self, pe: PeId, dir: Dir) -> &mut Self {
        self.severed_links.insert((pe, dir));
        self
    }

    /// Disables register slot `reg` of `pe`'s register file.
    pub fn disable_reg(&mut self, pe: PeId, reg: usize) -> &mut Self {
        self.disabled_regs.insert((pe, reg));
        self
    }

    /// Disables `pe`'s local data-memory bank.
    pub fn disable_mem(&mut self, pe: PeId) -> &mut Self {
        self.disabled_mems.insert(pe);
        self
    }

    /// `true` when no resource is faulted (the fast path everywhere).
    pub fn is_empty(&self) -> bool {
        self.dead_pes.is_empty()
            && self.severed_links.is_empty()
            && self.disabled_regs.is_empty()
            && self.disabled_mems.is_empty()
    }

    /// `true` when at least one whole PE is dead (the only fault class that
    /// forces VSA cropping — all others are routed around in place).
    pub fn has_dead_pes(&self) -> bool {
        !self.dead_pes.is_empty()
    }

    /// Number of faulted resources across all classes.
    pub fn len(&self) -> usize {
        self.dead_pes.len()
            + self.severed_links.len()
            + self.disabled_regs.len()
            + self.disabled_mems.len()
    }

    /// Whether `pe` is dead.
    pub fn pe_dead(&self, pe: PeId) -> bool {
        self.dead_pes.contains(&pe)
    }

    /// Whether the directional link leaving `pe` toward `dir` is severed.
    pub fn link_severed(&self, pe: PeId, dir: Dir) -> bool {
        self.severed_links.contains(&(pe, dir))
    }

    /// Whether register slot `reg` of `pe` is disabled.
    pub fn reg_disabled(&self, pe: PeId, reg: usize) -> bool {
        self.disabled_regs.contains(&(pe, reg))
    }

    /// Whether `pe`'s data-memory bank is disabled.
    pub fn mem_disabled(&self, pe: PeId) -> bool {
        self.disabled_mems.contains(&pe)
    }

    /// The dead PEs in deterministic (row-major) order.
    pub fn dead_pes(&self) -> impl Iterator<Item = PeId> + '_ {
        self.dead_pes.iter().copied()
    }

    /// Whether this map masks `node` out of the MRRG of `spec` — the single
    /// source of truth shared by enumeration, the dense index, the verifier
    /// and the simulator.
    ///
    /// A node is masked when its owning PE is dead, plus per kind:
    ///
    /// * `Wire(d)` — the value on the link from `node.pe` toward `d`,
    ///   available at the neighbour — is masked when that link is severed or
    ///   the receiving neighbour is dead (a wire into a dead PE delivers
    ///   nowhere);
    /// * `Reg(r)` is masked when that register slot is disabled;
    /// * `Mem` is masked when the PE's memory bank is disabled.
    ///
    /// `RegWr`/`RegRd` ports are only masked with their whole PE: with some
    /// registers still alive they remain useful, and with all registers
    /// disabled they are harmless dead ends the router never profits from.
    pub fn masks(&self, spec: &CgraSpec, node: RNode) -> bool {
        if self.is_empty() {
            return false;
        }
        if self.pe_dead(node.pe) {
            return true;
        }
        match node.kind {
            RKind::Wire(dir) => {
                self.link_severed(node.pe, dir)
                    || spec.neighbor(node.pe, dir).is_some_and(|n| self.pe_dead(n))
            }
            RKind::Reg(r) => self.reg_disabled(node.pe, r as usize),
            RKind::Mem => self.mem_disabled(node.pe),
            RKind::Fu | RKind::Out | RKind::RegWr | RKind::RegRd => false,
        }
    }
}

impl fmt::Display for FaultMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "no faults");
        }
        let mut parts = Vec::new();
        if !self.dead_pes.is_empty() {
            parts.push(format!("{} dead PE(s)", self.dead_pes.len()));
        }
        if !self.severed_links.is_empty() {
            parts.push(format!("{} severed link(s)", self.severed_links.len()));
        }
        if !self.disabled_regs.is_empty() {
            parts.push(format!("{} disabled register(s)", self.disabled_regs.len()));
        }
        if !self.disabled_mems.is_empty() {
            parts.push(format!("{} disabled memory bank(s)", self.disabled_mems.len()));
        }
        write!(f, "{}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_map_masks_nothing() {
        let spec = CgraSpec::square(4);
        let map = FaultMap::new();
        assert!(map.is_empty());
        assert_eq!(map.len(), 0);
        for pe in spec.pes() {
            assert!(!map.masks(&spec, RNode::new(pe, 0, RKind::Fu)));
        }
        assert_eq!(map.to_string(), "no faults");
    }

    #[test]
    fn dead_pe_masks_every_kind_and_incoming_wires() {
        let spec = CgraSpec::square(4);
        let mut map = FaultMap::new();
        map.kill_pe(PeId::new(1, 1));
        assert!(map.has_dead_pes());
        for kind in [RKind::Fu, RKind::Out, RKind::Mem, RKind::RegWr, RKind::RegRd, RKind::Reg(0)] {
            assert!(map.masks(&spec, RNode::new(PeId::new(1, 1), 0, kind)), "{kind:?}");
        }
        // The wire from (0,1) south into the dead PE delivers nowhere.
        assert!(map.masks(&spec, RNode::new(PeId::new(0, 1), 0, RKind::Wire(Dir::South))));
        // A wire from (0,1) east does not touch the dead PE.
        assert!(!map.masks(&spec, RNode::new(PeId::new(0, 1), 0, RKind::Wire(Dir::East))));
    }

    #[test]
    fn severed_link_is_directional() {
        let spec = CgraSpec::square(4);
        let mut map = FaultMap::new();
        map.sever_link(PeId::new(0, 0), Dir::East);
        assert!(map.masks(&spec, RNode::new(PeId::new(0, 0), 2, RKind::Wire(Dir::East))));
        // The reverse link (0,1) -> west survives.
        assert!(!map.masks(&spec, RNode::new(PeId::new(0, 1), 2, RKind::Wire(Dir::West))));
        assert!(!map.masks(&spec, RNode::new(PeId::new(0, 0), 2, RKind::Fu)));
    }

    #[test]
    fn reg_and_mem_faults_are_slot_precise() {
        let spec = CgraSpec::square(2);
        let mut map = FaultMap::new();
        map.disable_reg(PeId::new(0, 0), 2).disable_mem(PeId::new(1, 1));
        assert!(map.masks(&spec, RNode::new(PeId::new(0, 0), 0, RKind::Reg(2))));
        assert!(!map.masks(&spec, RNode::new(PeId::new(0, 0), 0, RKind::Reg(1))));
        assert!(map.masks(&spec, RNode::new(PeId::new(1, 1), 1, RKind::Mem)));
        assert!(!map.masks(&spec, RNode::new(PeId::new(0, 1), 1, RKind::Mem)));
        assert_eq!(map.len(), 2);
        let text = map.to_string();
        assert!(text.contains("register") && text.contains("memory"), "{text}");
    }
}
