//! Activity-based CGRA power model.
//!
//! The paper synthesizes its CGRA in Verilog on a 40 nm process with the
//! Synopsys toolchain (510 MHz max clock) and reports power efficiency in
//! MOPS/mW. A proprietary synthesis flow is not reproducible here, so this
//! module substitutes an analytical model whose constants are calibrated to
//! published 40 nm CGRA silicon (the HyCUBE A-SSCC'19 chip: 0.9 V,
//! 26.4 MOPS/mW, 290 pJ/cycle for a 4×4 array, i.e. ≈148 mW at 510 MHz —
//! ≈9.2 mW per fully-active PE).
//!
//! The model preserves the property Fig. 7 depends on: total power grows
//! roughly linearly with the number of PEs (configuration memory, clock tree
//! and leakage burn regardless of utilization) while only the *active*
//! fraction contributes compute throughput — so low-utilization mappings
//! collapse in MOPS/mW as arrays grow.

use crate::arch::CgraSpec;

/// Per-component power constants in mW at the nominal clock.
///
/// # Example
///
/// ```
/// use himap_cgra::{CgraSpec, PowerModel};
///
/// let model = PowerModel::cmos40nm();
/// let spec = CgraSpec::square(4);
/// let full = model.array_power_mw(&spec, 1.0);
/// let idle = model.array_power_mw(&spec, 0.0);
/// assert!(full > idle && idle > 0.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct PowerModel {
    /// Dynamic power of an ALU executing an operation.
    pub alu_active_mw: f64,
    /// Dynamic power of the crossbar switch when routing.
    pub xbar_active_mw: f64,
    /// Register-file access power (averaged per active cycle).
    pub rf_active_mw: f64,
    /// Local data-memory access power (averaged per active cycle).
    pub mem_active_mw: f64,
    /// Always-on per-PE power: configuration memory read, instruction
    /// decode, clock tree.
    pub static_per_pe_mw: f64,
    /// Leakage per PE.
    pub leakage_per_pe_mw: f64,
    /// Nominal frequency the constants are calibrated at, MHz.
    pub nominal_freq_mhz: f64,
}

impl PowerModel {
    /// Constants calibrated to 40 nm CGRA silicon at 510 MHz (see module
    /// docs). A fully active PE draws ≈9.2 mW, an idle PE ≈3.2 mW.
    pub fn cmos40nm() -> Self {
        PowerModel {
            alu_active_mw: 3.4,
            xbar_active_mw: 1.4,
            rf_active_mw: 0.7,
            mem_active_mw: 0.5,
            static_per_pe_mw: 2.4,
            leakage_per_pe_mw: 0.8,
            nominal_freq_mhz: 510.0,
        }
    }

    /// Power of a single PE at a given activity factor `a ∈ [0, 1]`
    /// (fraction of cycles the PE executes an operation), scaled to the
    /// spec's clock frequency.
    ///
    /// # Panics
    ///
    /// Panics if `activity` is outside `[0, 1]`.
    pub fn pe_power_mw(&self, spec: &CgraSpec, activity: f64) -> f64 {
        assert!((0.0..=1.0).contains(&activity), "activity must be in [0, 1]");
        let f_scale = spec.freq_mhz / self.nominal_freq_mhz;
        let dynamic = activity
            * (self.alu_active_mw + self.xbar_active_mw + self.rf_active_mw + self.mem_active_mw);
        (dynamic + self.static_per_pe_mw) * f_scale + self.leakage_per_pe_mw
    }

    /// Total array power at a uniform utilization `u ∈ [0, 1]` (the paper's
    /// `U`: fraction of FU slots that execute operations).
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is outside `[0, 1]`.
    pub fn array_power_mw(&self, spec: &CgraSpec, utilization: f64) -> f64 {
        self.pe_power_mw(spec, utilization) * spec.pe_count() as f64
    }

    /// Peak throughput of the array in MOPS (million operations per second)
    /// at a given utilization: `U × #PEs × f`.
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is outside `[0, 1]`.
    pub fn throughput_mops(&self, spec: &CgraSpec, utilization: f64) -> f64 {
        assert!((0.0..=1.0).contains(&utilization), "utilization must be in [0, 1]");
        utilization * spec.pe_count() as f64 * spec.freq_mhz
    }

    /// Power efficiency in MOPS/mW at a given utilization (the metric of
    /// Fig. 7 bottom).
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is outside `[0, 1]`.
    pub fn efficiency_mops_per_mw(&self, spec: &CgraSpec, utilization: f64) -> f64 {
        let p = self.array_power_mw(spec, utilization);
        self.throughput_mops(spec, utilization) / p
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::cmos40nm()
    }
}

#[allow(clippy::unwrap_used, clippy::expect_used)]
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_close_to_hycube_silicon() {
        // 4x4 at full activity should land in the vicinity of 148 mW.
        let m = PowerModel::cmos40nm();
        let spec = CgraSpec::square(4);
        let p = m.array_power_mw(&spec, 1.0);
        assert!((100.0..200.0).contains(&p), "4x4 full-activity power {p} mW");
    }

    #[test]
    fn idle_power_is_substantial_but_smaller() {
        let m = PowerModel::cmos40nm();
        let spec = CgraSpec::square(4);
        let idle = m.array_power_mw(&spec, 0.0);
        let full = m.array_power_mw(&spec, 1.0);
        assert!(idle > 0.2 * full, "static power should be a real fraction");
        assert!(idle < 0.6 * full, "dynamic power should dominate at full activity");
    }

    #[test]
    fn power_scales_linearly_with_pes() {
        let m = PowerModel::cmos40nm();
        let p4 = m.array_power_mw(&CgraSpec::square(4), 0.5);
        let p8 = m.array_power_mw(&CgraSpec::square(8), 0.5);
        assert!((p8 / p4 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn efficiency_drops_with_utilization() {
        // The property behind Fig. 7: at low utilization the static power
        // dominates and MOPS/mW collapses.
        let m = PowerModel::cmos40nm();
        let spec = CgraSpec::square(16);
        let e_full = m.efficiency_mops_per_mw(&spec, 1.0);
        let e_low = m.efficiency_mops_per_mw(&spec, 0.05);
        assert!(e_full > 3.0 * e_low, "full {e_full} vs low {e_low}");
    }

    #[test]
    fn efficiency_is_size_independent_at_fixed_utilization() {
        let m = PowerModel::cmos40nm();
        let e4 = m.efficiency_mops_per_mw(&CgraSpec::square(4), 0.8);
        let e32 = m.efficiency_mops_per_mw(&CgraSpec::square(32), 0.8);
        assert!((e4 - e32).abs() < 1e-9);
    }

    #[test]
    fn throughput_formula() {
        let m = PowerModel::cmos40nm();
        let spec = CgraSpec::square(8);
        assert_eq!(m.throughput_mops(&spec, 1.0), 64.0 * 510.0);
        assert_eq!(m.throughput_mops(&spec, 0.5), 32.0 * 510.0);
    }

    #[test]
    #[should_panic(expected = "activity")]
    fn rejects_bad_activity() {
        let m = PowerModel::cmos40nm();
        let _ = m.pe_power_mw(&CgraSpec::square(2), 1.5);
    }

    #[test]
    fn frequency_scaling() {
        let m = PowerModel::cmos40nm();
        let mut slow = CgraSpec::square(4);
        slow.freq_mhz = 255.0;
        let fast = CgraSpec::square(4);
        let p_slow = m.pe_power_mw(&slow, 1.0);
        let p_fast = m.pe_power_mw(&fast, 1.0);
        // Dynamic + static scale with f, leakage does not.
        assert!(p_slow < p_fast);
        assert!(p_slow > 0.5 * p_fast);
    }
}
