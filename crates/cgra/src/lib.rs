//! CGRA architecture model for the HiMap reproduction.
//!
//! Models the target architecture of the paper (§I Fig. 1, §VI): a 2-D mesh
//! of processing elements, each with an ALU, a small register file, a
//! crossbar switch, a configuration memory and a local data memory, fed by
//! on-chip memory banks.
//!
//! Three views of the architecture are provided:
//!
//! * [`CgraSpec`] — the static description (array shape, RF size, …);
//! * [`Vsa`] — the *Virtual Systolic Array* clustering `G → G'` of §IV:
//!   the PE array partitioned into `s1 × s2` sub-CGRAs;
//! * [`Mrrg`] — the time-extended *Modulo Routing Resource Graph* `H_II`.
//!   MRRGs for large arrays have millions of resource nodes, so the graph is
//!   **implicit**: [`Mrrg::successors`]/[`Mrrg::predecessors`] enumerate
//!   neighbours on demand instead of materializing adjacency lists.
//!
//! The [`power`] module provides the activity-based power model substituted
//! for the paper's Verilog/Synopsys synthesis flow (see `DESIGN.md`).
//!
//! # Example
//!
//! ```
//! use himap_cgra::{CgraSpec, Mrrg};
//!
//! let spec = CgraSpec::square(4);
//! let mrrg = Mrrg::new(spec.clone(), 3);
//! assert_eq!(mrrg.ii(), 3);
//! assert_eq!(spec.pe_count(), 16);
//! ```

#![forbid(unsafe_code)]

mod arch;
mod capability;
mod mrrg;
pub mod power;
mod vsa;

pub use arch::{CgraSpec, Dir, PeId, SpecError, ALL_DIRS};
pub use capability::{CapabilityMap, FaultMap, OpClass, ALL_OP_CLASSES};
pub use mrrg::{MemoryStats, Mrrg, MrrgIndex, RIdx, RKind, RNode};
pub use power::PowerModel;
pub use vsa::{SpeId, Vsa, VsaError};
