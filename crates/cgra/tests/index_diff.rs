//! Differential tests pinning the dense CSR index to the implicit MRRG.
//!
//! `MrrgIndex` is only allowed to be a *compilation* of `Mrrg` — same node
//! set, same enumeration order, same adjacency in the same order, same
//! per-edge latencies. These properties drive random `(rows, cols, II)`
//! triples through both representations and require exact agreement, so any
//! drift between the on-the-fly enumeration and the CSR build fails here
//! before it can corrupt a routed mapping.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use himap_cgra::{CgraSpec, FaultMap, Mrrg, MrrgIndex, PeId, RIdx, RNode, ALL_DIRS};
use proptest::prelude::*;

fn arb_dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..5, 1usize..5, 1usize..5)
}

/// Random dimensions plus a random fault map (up to three faults drawn from
/// all four classes) fitting those dimensions.
fn arb_faulted() -> impl Strategy<Value = (usize, usize, usize, FaultMap)> {
    arb_dims().prop_flat_map(|(rows, cols, ii)| {
        proptest::collection::vec((0usize..4, 0usize..rows, 0usize..cols, 0usize..8), 0..4)
            .prop_map(move |faults| {
                let mut map = FaultMap::new();
                for (class, r, c, x) in faults {
                    match class {
                        0 => map.kill_pe(PeId::new(r, c)),
                        1 => map.sever_link(PeId::new(r, c), ALL_DIRS[x % ALL_DIRS.len()]),
                        2 => map.disable_reg(PeId::new(r, c), x),
                        _ => map.disable_mem(PeId::new(r, c)),
                    };
                }
                (rows, cols, ii, map)
            })
    })
}

fn build(rows: usize, cols: usize, ii: usize) -> (Mrrg, MrrgIndex) {
    let spec = CgraSpec::mesh(rows, cols).expect("non-empty mesh");
    (Mrrg::new(spec.clone(), ii), MrrgIndex::new(spec, ii))
}

fn build_faulted(rows: usize, cols: usize, ii: usize, faults: &FaultMap) -> (Mrrg, MrrgIndex) {
    let spec = CgraSpec::mesh(rows, cols).expect("non-empty mesh").with_faults(faults.clone());
    (Mrrg::new(spec.clone(), ii), MrrgIndex::new(spec, ii))
}

proptest! {
    #[test]
    fn ids_are_dense_and_bijective((rows, cols, ii) in arb_dims()) {
        let (mrrg, index) = build(rows, cols, ii);
        let legacy = mrrg.nodes();
        prop_assert_eq!(index.len(), legacy.len());
        prop_assert_eq!(index.nodes(), legacy.as_slice());
        for (i, &node) in legacy.iter().enumerate() {
            let ri = RIdx(i as u32);
            prop_assert_eq!(index.node(ri), node);
            prop_assert_eq!(index.index_of(node), Some(ri));
            prop_assert!(index.contains(node));
        }
    }

    #[test]
    fn csr_successors_match_legacy_enumeration((rows, cols, ii) in arb_dims()) {
        let (mrrg, index) = build(rows, cols, ii);
        for (i, &node) in mrrg.nodes().iter().enumerate() {
            let dense: Vec<RNode> =
                index.successors(RIdx(i as u32)).map(|(j, _)| index.node(j)).collect();
            // Order-exact: the CSR row must be the legacy enumeration.
            prop_assert_eq!(dense, mrrg.successors(node), "successors of {:?}", node);
        }
    }

    #[test]
    fn csr_predecessors_match_legacy_enumeration((rows, cols, ii) in arb_dims()) {
        let (mrrg, index) = build(rows, cols, ii);
        for (i, &node) in mrrg.nodes().iter().enumerate() {
            let dense: Vec<RNode> =
                index.predecessors(RIdx(i as u32)).map(|(j, _)| index.node(j)).collect();
            prop_assert_eq!(dense, mrrg.predecessors(node), "predecessors of {:?}", node);
        }
    }

    #[test]
    fn csr_latencies_match_legacy_edge_latency((rows, cols, ii) in arb_dims()) {
        let (mrrg, index) = build(rows, cols, ii);
        for (i, &node) in mrrg.nodes().iter().enumerate() {
            for (j, lat) in index.successors(RIdx(i as u32)) {
                let succ = index.node(j);
                prop_assert_eq!(
                    mrrg.edge_latency(node, succ),
                    Some(lat),
                    "latency of {:?} -> {:?}",
                    node,
                    succ
                );
                prop_assert_eq!(index.edge_latency(node, succ), Some(lat));
            }
        }
    }

    #[test]
    fn faulted_ids_stay_dense_and_bijective((rows, cols, ii, faults) in arb_faulted()) {
        let (mrrg, index) = build_faulted(rows, cols, ii, &faults);
        let legacy = mrrg.nodes();
        prop_assert_eq!(index.len(), legacy.len());
        prop_assert_eq!(index.nodes(), legacy.as_slice());
        for (i, &node) in legacy.iter().enumerate() {
            let ri = RIdx(i as u32);
            prop_assert_eq!(index.node(ri), node);
            prop_assert_eq!(index.index_of(node), Some(ri));
        }
    }

    #[test]
    fn faulted_adjacency_matches_legacy_enumeration((rows, cols, ii, faults) in arb_faulted()) {
        let (mrrg, index) = build_faulted(rows, cols, ii, &faults);
        for (i, &node) in mrrg.nodes().iter().enumerate() {
            let succ: Vec<RNode> =
                index.successors(RIdx(i as u32)).map(|(j, _)| index.node(j)).collect();
            prop_assert_eq!(succ, mrrg.successors(node), "successors of {:?}", node);
            let pred: Vec<RNode> =
                index.predecessors(RIdx(i as u32)).map(|(j, _)| index.node(j)).collect();
            prop_assert_eq!(pred, mrrg.predecessors(node), "predecessors of {:?}", node);
        }
    }

    #[test]
    fn faulted_builds_exclude_exactly_the_masked_nodes((rows, cols, ii, faults) in arb_faulted()) {
        let spec = CgraSpec::mesh(rows, cols).expect("non-empty mesh");
        let faulted_spec = spec.clone().with_faults(faults.clone());
        let pristine = MrrgIndex::new(spec.clone(), ii);
        let (mrrg, index) = build_faulted(rows, cols, ii, &faults);
        // No masked node survives in either representation...
        for node in mrrg.nodes() {
            prop_assert!(!faults.masks(&faulted_spec, node), "masked {:?} present", node);
            prop_assert!(index.contains(node));
        }
        // ...and nothing else is dropped: pristine minus masked == faulted.
        let kept =
            pristine.nodes().iter().filter(|&&n| !faults.masks(&faulted_spec, n)).count();
        prop_assert_eq!(kept, index.len());
    }

    #[test]
    fn forward_and_backward_csr_agree((rows, cols, ii) in arb_dims()) {
        let (_, index) = build(rows, cols, ii);
        // Every forward edge must appear exactly once in the target's
        // backward row with the same latency, and vice versa.
        let mut fwd: Vec<(u32, u32, u32)> = Vec::new();
        let mut bwd: Vec<(u32, u32, u32)> = Vec::new();
        for i in 0..index.len() {
            for (j, lat) in index.successors(RIdx(i as u32)) {
                fwd.push((i as u32, j.0, lat));
            }
            for (j, lat) in index.predecessors(RIdx(i as u32)) {
                bwd.push((j.0, i as u32, lat));
            }
        }
        fwd.sort_unstable();
        bwd.sort_unstable();
        prop_assert_eq!(fwd, bwd);
    }
}
