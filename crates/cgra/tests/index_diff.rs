//! Differential tests pinning the dense CSR index to the implicit MRRG.
//!
//! `MrrgIndex` is only allowed to be a *compilation* of `Mrrg` — same node
//! set, same enumeration order, same adjacency in the same order, same
//! per-edge latencies. These properties drive random `(rows, cols, II)`
//! triples through both representations and require exact agreement, so any
//! drift between the on-the-fly enumeration and the CSR build fails here
//! before it can corrupt a routed mapping.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use himap_cgra::{CgraSpec, Mrrg, MrrgIndex, RIdx, RNode};
use proptest::prelude::*;

fn arb_dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..5, 1usize..5, 1usize..5)
}

fn build(rows: usize, cols: usize, ii: usize) -> (Mrrg, MrrgIndex) {
    let spec = CgraSpec::mesh(rows, cols).expect("non-empty mesh");
    (Mrrg::new(spec.clone(), ii), MrrgIndex::new(spec, ii))
}

proptest! {
    #[test]
    fn ids_are_dense_and_bijective((rows, cols, ii) in arb_dims()) {
        let (mrrg, index) = build(rows, cols, ii);
        let legacy = mrrg.nodes();
        prop_assert_eq!(index.len(), legacy.len());
        prop_assert_eq!(index.nodes(), legacy.as_slice());
        for (i, &node) in legacy.iter().enumerate() {
            let ri = RIdx(i as u32);
            prop_assert_eq!(index.node(ri), node);
            prop_assert_eq!(index.index_of(node), Some(ri));
            prop_assert!(index.contains(node));
        }
    }

    #[test]
    fn csr_successors_match_legacy_enumeration((rows, cols, ii) in arb_dims()) {
        let (mrrg, index) = build(rows, cols, ii);
        for (i, &node) in mrrg.nodes().iter().enumerate() {
            let dense: Vec<RNode> =
                index.successors(RIdx(i as u32)).map(|(j, _)| index.node(j)).collect();
            // Order-exact: the CSR row must be the legacy enumeration.
            prop_assert_eq!(dense, mrrg.successors(node), "successors of {:?}", node);
        }
    }

    #[test]
    fn csr_predecessors_match_legacy_enumeration((rows, cols, ii) in arb_dims()) {
        let (mrrg, index) = build(rows, cols, ii);
        for (i, &node) in mrrg.nodes().iter().enumerate() {
            let dense: Vec<RNode> =
                index.predecessors(RIdx(i as u32)).map(|(j, _)| index.node(j)).collect();
            prop_assert_eq!(dense, mrrg.predecessors(node), "predecessors of {:?}", node);
        }
    }

    #[test]
    fn csr_latencies_match_legacy_edge_latency((rows, cols, ii) in arb_dims()) {
        let (mrrg, index) = build(rows, cols, ii);
        for (i, &node) in mrrg.nodes().iter().enumerate() {
            for (j, lat) in index.successors(RIdx(i as u32)) {
                let succ = index.node(j);
                prop_assert_eq!(
                    mrrg.edge_latency(node, succ),
                    Some(lat),
                    "latency of {:?} -> {:?}",
                    node,
                    succ
                );
                prop_assert_eq!(index.edge_latency(node, succ), Some(lat));
            }
        }
    }

    #[test]
    fn forward_and_backward_csr_agree((rows, cols, ii) in arb_dims()) {
        let (_, index) = build(rows, cols, ii);
        // Every forward edge must appear exactly once in the target's
        // backward row with the same latency, and vice versa.
        let mut fwd: Vec<(u32, u32, u32)> = Vec::new();
        let mut bwd: Vec<(u32, u32, u32)> = Vec::new();
        for i in 0..index.len() {
            for (j, lat) in index.successors(RIdx(i as u32)) {
                fwd.push((i as u32, j.0, lat));
            }
            for (j, lat) in index.predecessors(RIdx(i as u32)) {
                bwd.push((j.0, i as u32, lat));
            }
        }
        fwd.sort_unstable();
        bwd.sort_unstable();
        prop_assert_eq!(fwd, bwd);
    }
}
